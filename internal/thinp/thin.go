package thinp

import (
	"errors"
	"fmt"

	"mobiceal/internal/storage"
)

// Thin is the block-device view of one thin volume. Reads of unprovisioned
// blocks return zeros; the first write to a block provisions physical space
// through the pool allocator (and, under MobiCeal's policy, may trigger a
// dummy write). Thin is safe for concurrent use; it shares the pool's lock.
type Thin struct {
	pool *Pool
	id   int
}

var _ storage.RangeDevice = (*Thin)(nil)

// ID returns the thin device id.
func (t *Thin) ID() int { return t.id }

// BlockSize implements storage.Device.
func (t *Thin) BlockSize() int { return t.pool.data.BlockSize() }

// NumBlocks implements storage.Device.
func (t *Thin) NumBlocks() uint64 {
	t.pool.mu.Lock()
	defer t.pool.mu.Unlock()
	tm, ok := t.pool.thins[t.id]
	if !ok {
		return 0
	}
	return tm.virtBlocks
}

// ReadBlock implements storage.Device.
func (t *Thin) ReadBlock(idx uint64, dst []byte) error {
	t.pool.mu.Lock()
	tm, ok := t.pool.thins[t.id]
	if !ok {
		t.pool.mu.Unlock()
		return fmt.Errorf("%w: id %d", ErrNoSuchThin, t.id)
	}
	if idx >= tm.virtBlocks {
		t.pool.mu.Unlock()
		return fmt.Errorf("%w: vblock %d of %d", storage.ErrOutOfRange, idx, tm.virtBlocks)
	}
	if len(dst) != t.pool.data.BlockSize() {
		t.pool.mu.Unlock()
		return storage.ErrBadBuffer
	}
	pb, mapped := tm.pt.get(idx)
	meter := t.pool.opts.Meter
	t.pool.mu.Unlock()

	if meter != nil {
		meter.ChargeTraversalRead()
	}
	if !mapped {
		clear(dst)
		return nil
	}
	return t.pool.data.ReadBlock(pb, dst)
}

// WriteBlock implements storage.Device.
func (t *Thin) WriteBlock(idx uint64, src []byte) error {
	t.pool.mu.Lock()
	tm, ok := t.pool.thins[t.id]
	if !ok {
		t.pool.mu.Unlock()
		return fmt.Errorf("%w: id %d", ErrNoSuchThin, t.id)
	}
	if idx >= tm.virtBlocks {
		t.pool.mu.Unlock()
		return fmt.Errorf("%w: vblock %d of %d", storage.ErrOutOfRange, idx, tm.virtBlocks)
	}
	if len(src) != t.pool.data.BlockSize() {
		t.pool.mu.Unlock()
		return storage.ErrBadBuffer
	}
	pb, mapped := tm.pt.get(idx)
	if !mapped {
		var err error
		pb, err = t.pool.provisionLocked(tm, idx)
		if err != nil {
			t.pool.mu.Unlock()
			return err
		}
	}
	meter := t.pool.opts.Meter
	t.pool.mu.Unlock()

	if meter != nil {
		meter.ChargeTraversalWrite()
	}
	return t.pool.data.WriteBlock(pb, src)
}

// extent is one physically-resolved run of a virtual range: count
// consecutive virtual blocks that are either all holes or mapped to
// physically consecutive data blocks, so the run can be served by a single
// data-device call.
type extent struct {
	phys  uint64
	count int
	hole  bool
}

// appendRun extends the last extent when vblock resolution continues the
// current physical run, and starts a new extent otherwise. Callers seed it
// with a small stack-backed slice so typical requests resolve without a
// heap allocation; larger run counts spill via append.
func appendRun(exts []extent, phys uint64, hole bool) []extent {
	if n := len(exts); n > 0 {
		last := &exts[n-1]
		if hole && last.hole {
			last.count++
			return exts
		}
		if !hole && !last.hole && phys == last.phys+uint64(last.count) {
			last.count++
			return exts
		}
	}
	return append(exts, extent{phys: phys, count: 1, hole: hole})
}

// checkRangeLocked validates a range request against the thin geometry and
// returns its metadata record. Caller holds the pool lock.
func (t *Thin) checkRangeLocked(start uint64, buf []byte) (*thinMeta, uint64, error) {
	tm, ok := t.pool.thins[t.id]
	if !ok {
		return nil, 0, fmt.Errorf("%w: id %d", ErrNoSuchThin, t.id)
	}
	bs := t.pool.data.BlockSize()
	if len(buf)%bs != 0 {
		return nil, 0, storage.ErrBadBuffer
	}
	n := uint64(len(buf) / bs)
	if n > 0 && (start >= tm.virtBlocks || n > tm.virtBlocks-start) {
		return nil, 0, fmt.Errorf("%w: vblocks [%d, %d) of %d",
			storage.ErrOutOfRange, start, start+n, tm.virtBlocks)
	}
	return tm, n, nil
}

// ReadBlocks implements storage.RangeDevice. The pool lock is taken once
// for the whole request to resolve the virtual range into extent runs;
// physically contiguous runs then become single data-device reads and holes
// become zero fills, all outside the lock.
func (t *Thin) ReadBlocks(start uint64, dst []byte) error {
	var extArr [16]extent
	t.pool.mu.Lock()
	tm, n, err := t.checkRangeLocked(start, dst)
	if err != nil {
		t.pool.mu.Unlock()
		return err
	}
	exts := extArr[:0]
	// The page table resolves the whole range with one sequential leaf
	// walk instead of n independent lookups.
	tm.pt.walkRange(start, n, func(_ uint64, pb uint64, mapped bool) {
		exts = appendRun(exts, pb, !mapped)
	})
	meter := t.pool.opts.Meter
	t.pool.mu.Unlock()

	if meter != nil {
		for i := uint64(0); i < n; i++ {
			meter.ChargeTraversalRead()
		}
	}
	bs := t.pool.data.BlockSize()
	off := 0
	for _, e := range exts {
		span := e.count * bs
		buf := dst[off : off+span]
		switch {
		case e.hole:
			clear(buf)
		case e.count == 1:
			if err := t.pool.data.ReadBlock(e.phys, buf); err != nil {
				return err
			}
		default:
			if err := storage.ReadBlocks(t.pool.data, e.phys, buf); err != nil {
				return err
			}
		}
		off += span
	}
	return nil
}

// WriteBlocks implements storage.RangeDevice. Unmapped blocks in the range
// are provisioned in one batch under a single pool-lock acquisition — the
// dummy-write policy is still consulted per provisioned block, preserving
// the paper's Sec. IV-B trigger semantics — then the resolved extent runs
// are written with coalesced data-device calls.
func (t *Thin) WriteBlocks(start uint64, src []byte) error {
	var extArr [16]extent
	t.pool.mu.Lock()
	tm, n, err := t.checkRangeLocked(start, src)
	if err != nil {
		t.pool.mu.Unlock()
		return err
	}
	exts := extArr[:0]
	var fresh []uint64 // vblocks provisioned by this request
	for i := uint64(0); i < n; i++ {
		pb, mapped := tm.pt.get(start + i)
		if !mapped {
			pb, err = t.pool.provisionLocked(tm, start+i)
			if err != nil {
				// Unwind this request's provisions: leaving them mapped
				// without ever writing their data would make the failed
				// vblocks read back device garbage instead of zeros.
				// (Dummy writes already performed stay — they are real,
				// durable noise.)
				for _, vb := range fresh {
					_ = t.pool.discardLocked(tm, vb)
				}
				t.pool.mu.Unlock()
				return err
			}
			fresh = append(fresh, start+i)
		}
		exts = appendRun(exts, pb, false)
	}
	meter := t.pool.opts.Meter
	t.pool.mu.Unlock()

	if meter != nil {
		for i := uint64(0); i < n; i++ {
			meter.ChargeTraversalWrite()
		}
	}
	bs := t.pool.data.BlockSize()
	off := 0
	done := uint64(0) // blocks whose data reached the device
	for _, e := range exts {
		span := e.count * bs
		var werr error
		if e.count == 1 {
			werr = t.pool.data.WriteBlock(e.phys, src[off:off+span])
		} else {
			werr = storage.WriteBlocks(t.pool.data, e.phys, src[off:off+span])
		}
		if werr != nil {
			// Discard this request's provisions whose data never landed:
			// left mapped, they would read back stale physical content
			// instead of zeros. A device reporting partial completion
			// tells us exactly how much of the extent made it; credit the
			// transferred prefix so its provisions survive. (If a
			// concurrent overlapping write raced this failed one, its
			// blocks land in the undefined-content regime overlapping
			// writes already are.)
			var pe *storage.PartialError
			if errors.As(werr, &pe) {
				done += uint64(pe.Done)
			}
			t.pool.mu.Lock()
			if tm, ok := t.pool.thins[t.id]; ok {
				for _, vb := range fresh {
					if vb >= start+done {
						_ = t.pool.discardLocked(tm, vb)
					}
				}
			}
			t.pool.mu.Unlock()
			return werr
		}
		done += uint64(e.count)
		off += span
	}
	return nil
}

// Discard unmaps virtual block idx, freeing its physical block (the TRIM
// analogue the garbage collector uses to reclaim dummy space).
func (t *Thin) Discard(idx uint64) error {
	return t.DiscardRange(idx, 1)
}

// DiscardRange unmaps the count virtual blocks starting at start, freeing
// their physical blocks — the vectored TRIM the garbage collector issues
// when it reclaims a run of dummy space. The whole range is processed under
// one pool-lock acquisition, the same economics the read/write range ops
// get from bio merging. Unprovisioned blocks in the range are no-ops.
func (t *Thin) DiscardRange(start, count uint64) error {
	t.pool.mu.Lock()
	defer t.pool.mu.Unlock()
	tm, ok := t.pool.thins[t.id]
	if !ok {
		return fmt.Errorf("%w: id %d", ErrNoSuchThin, t.id)
	}
	if count > 0 && (start >= tm.virtBlocks || count > tm.virtBlocks-start) {
		return fmt.Errorf("%w: vblocks [%d, %d) of %d",
			storage.ErrOutOfRange, start, start+count, tm.virtBlocks)
	}
	for i := uint64(0); i < count; i++ {
		if err := t.pool.discardLocked(tm, start+i); err != nil {
			return err
		}
	}
	return nil
}

// Sync implements storage.Device: flushes the data device and commits pool
// metadata, matching dm-thin's REQ_FLUSH handling.
func (t *Thin) Sync() error {
	if err := t.pool.data.Sync(); err != nil {
		return err
	}
	return t.pool.Commit()
}

// Close implements storage.Device. Thin views are cheap handles; closing
// one does not affect the pool.
func (t *Thin) Close() error { return nil }

package thinp

import (
	"errors"
	"fmt"

	"mobiceal/internal/storage"
)

// Thin is the block-device view of one thin volume. Reads of unprovisioned
// blocks return zeros; the first write to a block provisions physical space
// through the pool allocator (and, under MobiCeal's policy, may trigger a
// dummy write). Thin is safe for concurrent use; it shares the pool's lock.
type Thin struct {
	pool *Pool
	id   int
}

var (
	_ storage.RangeDevice = (*Thin)(nil)
	_ storage.VecDevice   = (*Thin)(nil)
)

// ID returns the thin device id.
func (t *Thin) ID() int { return t.id }

// BlockSize implements storage.Device.
func (t *Thin) BlockSize() int { return t.pool.data.BlockSize() }

// NumBlocks implements storage.Device.
func (t *Thin) NumBlocks() uint64 {
	t.pool.mu.RLock()
	defer t.pool.mu.RUnlock()
	tm, ok := t.pool.thins[t.id]
	if !ok {
		return 0
	}
	return tm.virtBlocks
}

// ReadBlock implements storage.Device. It is the single-block case of the
// vectored read and shares its locking discipline.
func (t *Thin) ReadBlock(idx uint64, dst []byte) error {
	if len(dst) != t.pool.data.BlockSize() {
		return storage.ErrBadBuffer
	}
	return t.ReadBlocks(idx, dst)
}

// WriteBlock implements storage.Device. It is the single-block case of the
// vectored write and shares its locking discipline.
func (t *Thin) WriteBlock(idx uint64, src []byte) error {
	if len(src) != t.pool.data.BlockSize() {
		return storage.ErrBadBuffer
	}
	return t.WriteBlocks(idx, src)
}

// ReadBlocks implements storage.RangeDevice as the single-segment case of
// ReadBlocksVec.
func (t *Thin) ReadBlocks(start uint64, dst []byte) error {
	v, err := t.vecOf(dst)
	if err != nil {
		return err
	}
	return t.ReadBlocksVec(start, v)
}

// WriteBlocks implements storage.RangeDevice as the single-segment case of
// WriteBlocksVec.
func (t *Thin) WriteBlocks(start uint64, src []byte) error {
	v, err := t.vecOf(src)
	if err != nil {
		return err
	}
	return t.WriteBlocksVec(start, v)
}

// vecOf wraps a flat buffer as a vec. An empty buffer becomes the empty
// vec (storage.Vec rejects empty segments; an empty range op is a valid
// no-op that must still surface ErrNoSuchThin through the vec path).
func (t *Thin) vecOf(buf []byte) (storage.BlockVec, error) {
	if len(buf)%t.pool.data.BlockSize() != 0 {
		return storage.BlockVec{}, storage.ErrBadBuffer
	}
	if len(buf) == 0 {
		return storage.BlockVec{}, nil
	}
	return storage.VecOne(t.pool.data.BlockSize(), buf), nil
}

// extent is one physically-resolved run of a virtual range: count
// consecutive virtual blocks that are either all holes or mapped to
// physically consecutive data blocks, so the run can be served by a single
// data-device call.
type extent struct {
	phys  uint64
	count int
	hole  bool
}

// appendRun extends the last extent when vblock resolution continues the
// current physical run, and starts a new extent otherwise. Callers seed it
// with a small stack-backed slice so typical requests resolve without a
// heap allocation; larger run counts spill via append.
func appendRun(exts []extent, phys uint64, hole bool) []extent {
	if n := len(exts); n > 0 {
		last := &exts[n-1]
		if hole && last.hole {
			last.count++
			return exts
		}
		if !hole && !last.hole && phys == last.phys+uint64(last.count) {
			last.count++
			return exts
		}
	}
	return append(exts, extent{phys: phys, count: 1, hole: hole})
}

// checkRangeLocked validates an n-block request at start against the thin
// geometry and returns its metadata record. Caller holds the pool lock.
func (t *Thin) checkRangeLocked(start, n uint64) (*thinMeta, error) {
	tm, ok := t.pool.thins[t.id]
	if !ok {
		return nil, fmt.Errorf("%w: id %d", ErrNoSuchThin, t.id)
	}
	if n > 0 && (start >= tm.virtBlocks || n > tm.virtBlocks-start) {
		return nil, fmt.Errorf("%w: vblocks [%d, %d) of %d",
			storage.ErrOutOfRange, start, start+n, tm.virtBlocks)
	}
	return tm, nil
}

// checkVecLocked validates a vec request and returns the thin's record and
// block count. Caller holds the pool lock.
func (t *Thin) checkVecLocked(start uint64, v storage.BlockVec) (*thinMeta, uint64, error) {
	if v.Segments() > 0 && v.BlockSize() != t.pool.data.BlockSize() {
		if _, ok := t.pool.thins[t.id]; !ok {
			return nil, 0, fmt.Errorf("%w: id %d", ErrNoSuchThin, t.id)
		}
		return nil, 0, storage.ErrBadBuffer
	}
	n := uint64(v.Len())
	tm, err := t.checkRangeLocked(start, n)
	if err != nil {
		return nil, 0, err
	}
	return tm, n, nil
}

// ReadBlocksVec implements storage.VecDevice. The pool's shared lock is
// taken once for the whole vec and held across the data-device reads: the
// mapping resolution and the transfers it authorizes are atomic against
// discard/commit, so a physical block can never be freed, committed away
// and reallocated to another thin while a read of it is in flight.
// Concurrent readers — of this thin or any other — share the lock and
// never contend. Physically contiguous extent runs map to sub-vectors of
// the caller's own segments (Slice shares memory, no bytes move) and go
// down as single scatter-gather data-device reads; holes zero-fill the
// destination segments directly.
func (t *Thin) ReadBlocksVec(start uint64, v storage.BlockVec) error {
	var extArr [16]extent
	t.pool.mu.RLock()
	// Reads survive every degradation short of PoolFail: a read-only pool
	// keeps serving data.
	if err := t.pool.checkReadableLocked(); err != nil {
		t.pool.mu.RUnlock()
		return err
	}
	tm, n, err := t.checkVecLocked(start, v)
	if err != nil {
		t.pool.mu.RUnlock()
		return err
	}
	exts := extArr[:0]
	// The page table resolves the whole range with one sequential leaf
	// walk instead of n independent lookups.
	tm.pt.walkRange(start, n, func(_ uint64, pb uint64, mapped bool) {
		exts = appendRun(exts, pb, !mapped)
	})
	meter := t.pool.opts.Meter
	off := 0
	for _, e := range exts {
		sub := v.Slice(off, e.count)
		if e.hole {
			err = sub.Range(func(_ int, seg []byte) error {
				clear(seg)
				return nil
			})
		} else {
			err = storage.ReadBlocksVec(t.pool.data, e.phys, sub)
		}
		if err != nil {
			t.pool.mu.RUnlock()
			return err
		}
		off += e.count
	}
	t.pool.mu.RUnlock()

	if meter != nil {
		for i := uint64(0); i < n; i++ {
			meter.ChargeTraversalRead()
		}
	}
	return nil
}

// writeAttempts is the number of optimistic shared-lock passes a write
// makes before falling back to the exclusive lock for guaranteed
// progress. More than one retry only happens when a concurrent discard
// keeps unmapping blocks of the range between the provision pass and the
// re-resolve — already undefined-content territory for the racing caller,
// but the fallback bounds the loop regardless.
const writeAttempts = 4

// WriteBlocksVec implements storage.VecDevice. A vec whose blocks are all
// provisioned resolves and writes under the pool's shared lock —
// concurrent overwriters never contend, and holding the lock across the
// transfer means a concurrent discard+commit can never free a block and
// hand it to another thin while this request's data is in flight. When
// blocks must be provisioned, the holes are provisioned in one batch
// under the exclusive lock — the dummy-write policy is still consulted
// per provisioned block, preserving the paper's Sec. IV-B trigger
// semantics — and the request then retries the shared-lock pass (the
// re-resolve sees the current mapping, including blocks a racing writer
// provisioned first). After writeAttempts races the request completes
// under the exclusive lock outright.
//
// Extent runs map to sub-vectors of the caller's own segments; the data
// device sees the caller's buffers directly — the thin layer moves no
// payload bytes.
// maxSpaceWaits bounds how many waitForSpace rounds one write request may
// spend queued for reclaim. The bound matters beyond hygiene: a request
// needing more blocks than the pool holds recovers the pool with its own
// unwind every round, so without a cap it would retry forever.
const maxSpaceWaits = 4

func (t *Thin) WriteBlocksVec(start uint64, v storage.BlockVec) error {
	var extArr [16]extent
	var fresh []uint64 // vblocks provisioned by this request, data not yet landed
	spaceWaits := 0
	for attempt := 0; ; attempt++ {
		exclusive := attempt >= writeAttempts
		lock, unlock := t.pool.mu.RLock, t.pool.mu.RUnlock
		if exclusive {
			lock, unlock = t.pool.mu.Lock, t.pool.mu.Unlock
			// The pool will hold the writer critical section from
			// provisioning until the transfer completes; stage dummy-write
			// noise before entering it.
			t.pool.stageNoise()
		}
		lock()
		if err := t.pool.checkMutableLocked(); err != nil {
			unlock()
			t.unwindFresh(fresh, start) // nothing landed
			return err
		}
		tm, n, err := t.checkVecLocked(start, v)
		if err != nil {
			unlock()
			t.unwindFresh(fresh, start) // nothing landed
			return err
		}
		exts := extArr[:0]
		hole := false
		tm.pt.walkRange(start, n, func(_ uint64, pb uint64, mapped bool) {
			if !mapped {
				hole = true
				return
			}
			exts = appendRun(exts, pb, false)
		})
		if hole {
			if exclusive {
				// Guaranteed-progress path: provision and re-resolve
				// under the same exclusive acquisition.
				if err := t.provisionHolesLocked(tm, start, n, &fresh); err != nil {
					unlock()
					if errors.Is(err, ErrNoSpace) && spaceWaits < maxSpaceWaits &&
						t.pool.waitForSpace() {
						// provisionHolesLocked discarded every fresh
						// provision before failing; reclaim arrived, retry.
						spaceWaits++
						fresh = fresh[:0]
						continue
					}
					return err
				}
				exts = exts[:0]
				tm.pt.walkRange(start, n, func(_ uint64, pb uint64, _ bool) {
					exts = appendRun(exts, pb, false)
				})
			} else {
				unlock()
				if err := t.provisionHoles(start, n, &fresh); err != nil {
					if errors.Is(err, ErrNoSpace) && spaceWaits < maxSpaceWaits &&
						t.pool.waitForSpace() {
						spaceWaits++
						fresh = fresh[:0]
						continue
					}
					return err
				}
				continue
			}
		}
		meter := t.pool.opts.Meter
		done, werr := t.writeExtentsLocked(v, exts)
		unlock()
		if werr != nil {
			// Discard this request's provisions whose data never landed:
			// left mapped, they would read back stale physical content
			// instead of zeros. A device reporting partial completion
			// tells us exactly how much of the run made it; the
			// transferred prefix keeps its provisions. (Dummy writes
			// already performed stay — they are real, durable noise.)
			t.unwindFresh(fresh, start+done)
			return werr
		}
		if meter != nil {
			for i := uint64(0); i < n; i++ {
				meter.ChargeTraversalWrite()
			}
		}
		return nil
	}
}

// provisionHoles provisions, under one exclusive-lock acquisition, every
// currently unmapped block of the range, appending the provisioned
// vblocks to *fresh. Dummy-write noise is staged before the lock is
// taken, so MobiCeal-policy pools do not hold the writer critical
// section during keystream generation.
func (t *Thin) provisionHoles(start, n uint64, fresh *[]uint64) error {
	t.pool.stageNoise()
	t.pool.mu.Lock()
	defer t.pool.mu.Unlock()
	tm, err := t.checkRangeLocked(start, n)
	if err != nil {
		return err
	}
	return t.provisionHolesLocked(tm, start, n, fresh)
}

// provisionHolesLocked provisions every currently unmapped block of
// [start, start+n), appending the provisioned vblocks to *fresh. On
// failure every vblock in *fresh — this pass and earlier ones — is
// discarded: none of this request's data has been written yet, and a
// mapped block whose data was never written would read back device
// garbage instead of zeros. (Dummy writes already performed stay — they
// are real, durable noise.) Caller holds the pool lock exclusively.
func (t *Thin) provisionHolesLocked(tm *thinMeta, start, n uint64, fresh *[]uint64) error {
	for i := uint64(0); i < n; i++ {
		if _, mapped := tm.pt.get(start + i); !mapped {
			if _, err := t.pool.provisionLocked(tm, start+i); err != nil {
				for _, vb := range *fresh {
					_ = t.pool.discardLocked(tm, vb)
				}
				return err
			}
			*fresh = append(*fresh, start+i)
		}
	}
	return nil
}

// writeExtentsLocked issues the resolved extent runs as scatter-gather
// data-device calls over sub-vectors of the caller's segments, returning
// how many blocks landed. Caller holds the pool lock (shared or
// exclusive) across the call — that is the point: the mappings the
// extents were resolved from cannot change while the data is in flight.
func (t *Thin) writeExtentsLocked(v storage.BlockVec, exts []extent) (uint64, error) {
	off := 0
	done := uint64(0) // blocks whose data reached the device
	for _, e := range exts {
		werr := storage.WriteBlocksVec(t.pool.data, e.phys, v.Slice(off, e.count))
		if werr != nil {
			var pe *storage.PartialError
			if errors.As(werr, &pe) {
				done += uint64(pe.Done)
			}
			return done, werr
		}
		done += uint64(e.count)
		off += e.count
	}
	return done, nil
}

// unwindFresh discards this request's fresh provisions at or above
// landedBelow (the vblocks whose data never reached the device). Caller
// holds no pool lock.
func (t *Thin) unwindFresh(fresh []uint64, landedBelow uint64) {
	if len(fresh) == 0 {
		return
	}
	t.pool.mu.Lock()
	if tm, ok := t.pool.thins[t.id]; ok {
		for _, vb := range fresh {
			if vb >= landedBelow {
				_ = t.pool.discardLocked(tm, vb)
			}
		}
	}
	t.pool.mu.Unlock()
}

// Discard unmaps virtual block idx, freeing its physical block (the TRIM
// analogue the garbage collector uses to reclaim dummy space).
func (t *Thin) Discard(idx uint64) error {
	return t.DiscardRange(idx, 1)
}

// DiscardRange unmaps the count virtual blocks starting at start, freeing
// their physical blocks — the vectored TRIM the garbage collector issues
// when it reclaims a run of dummy space. The whole range is processed under
// one pool-lock acquisition, the same economics the read/write range ops
// get from bio merging. Unprovisioned blocks in the range are no-ops.
func (t *Thin) DiscardRange(start, count uint64) error {
	t.pool.mu.Lock()
	defer t.pool.mu.Unlock()
	if err := t.pool.checkMutableLocked(); err != nil {
		return err
	}
	tm, ok := t.pool.thins[t.id]
	if !ok {
		return fmt.Errorf("%w: id %d", ErrNoSuchThin, t.id)
	}
	if count > 0 && (start >= tm.virtBlocks || count > tm.virtBlocks-start) {
		return fmt.Errorf("%w: vblocks [%d, %d) of %d",
			storage.ErrOutOfRange, start, start+count, tm.virtBlocks)
	}
	for i := uint64(0); i < count; i++ {
		if err := t.pool.discardLocked(tm, start+i); err != nil {
			return err
		}
	}
	return nil
}

// Sync implements storage.Device: flushes the data device and commits pool
// metadata, matching dm-thin's REQ_FLUSH handling.
func (t *Thin) Sync() error {
	if err := t.pool.data.Sync(); err != nil {
		return err
	}
	return t.pool.Commit()
}

// Close implements storage.Device. Thin views are cheap handles; closing
// one does not affect the pool.
func (t *Thin) Close() error { return nil }

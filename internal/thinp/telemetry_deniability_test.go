package thinp

import (
	"testing"

	"mobiceal/internal/prng"
	"mobiceal/internal/storage"
)

// quietPolicy never fires. It exists so the pool still runs the noise stage
// (stageNoise is skipped entirely for a nil policy) without performing any
// dummy writes.
type quietPolicy struct{}

func (quietPolicy) OnProvision(int) (int, int, bool) { return 0, 0, false }

// onceBurstPolicy fires a single dummy burst of count blocks into target on
// the first provision of the watched thin, then stays quiet.
type onceBurstPolicy struct {
	watch, target, count int
	fired                bool
}

func (p *onceBurstPolicy) OnProvision(thinID int) (int, int, bool) {
	if p.fired || thinID != p.watch {
		return 0, 0, false
	}
	p.fired = true
	return p.target, p.count, true
}

// publicPoolView is everything an adversary could learn from the pool's
// telemetry plus the accounting wraps around its devices — counters, event
// kinds and exact traffic volumes, with wall-clock durations stripped
// (latency sums differ between any two runs; only their sample counts are
// part of the deniability claim).
type publicPoolView struct {
	provisions, releases   uint64
	allocSamples           uint64
	commitCalls, flips     uint64
	foldSamples            uint64
	writeSamples           uint64
	totalSamples           uint64
	noiseStaged            int64
	eventKinds             string
	allocatedBlocks        uint64
	dataWrites, dataBytes  uint64
	dataReads              uint64
	metaWrites, metaReads  uint64
	metaBytesW, metaBytesR uint64
}

func publicView(t *testing.T, p *Pool, data, meta *storage.StatsDevice) publicPoolView {
	t.Helper()
	snap := p.MetricsSnapshot()
	ds := data.Metrics().Snapshot()
	ms := meta.Metrics().Snapshot()
	var kinds string
	for _, e := range snap.Events {
		kinds += e.Kind + ";"
	}
	return publicPoolView{
		provisions:      snap.Provisions,
		releases:        snap.Releases,
		allocSamples:    snap.AllocLat.Count,
		commitCalls:     snap.CommitCalls,
		flips:           snap.CommitFlips,
		foldSamples:     snap.CommitFoldLat.Count,
		writeSamples:    snap.CommitWriteLat.Count,
		totalSamples:    snap.CommitTotalLat.Count,
		noiseStaged:     snap.NoiseStaged,
		eventKinds:      kinds,
		allocatedBlocks: p.AllocatedBlocks(),
		dataWrites:      ds.WriteBlocks,
		dataBytes:       ds.BytesWrite,
		dataReads:       ds.ReadBlocks,
		metaWrites:      ms.WriteBlocks,
		metaReads:       ms.ReadBlocks,
		metaBytesW:      ms.BytesWrite,
		metaBytesR:      ms.BytesRead,
	}
}

// TestTelemetryDeniabilityTwinPools pins the choke-point accounting claim:
// a pool whose extra traffic is hidden-volume writes and a pool whose extra
// traffic is dummy-write noise of the same size present byte-for-byte
// identical public telemetry. This is the "identical by construction"
// property DESIGN.md's Observability section argues — if any counter,
// histogram sample count, gauge or event were recorded on a path only one
// of the two traffic kinds takes, the views would diverge and this test
// would catch it.
//
// Pool D carries the deniable workload: P public writes to thin 1 plus H
// hidden writes to thin 2, dummy policy armed but never firing. Pool C is
// the cover story an adversary must find equally plausible: the same P
// public writes, with the policy firing one H-block dummy burst into thin 2
// instead. Identical totals in, identical telemetry out.
func TestTelemetryDeniabilityTwinPools(t *testing.T) {
	const (
		dataBlocks = 512
		pubBlocks  = 16 // P: public writes in both runs
		hidBlocks  = 8  // H: hidden writes (D) == dummy burst (C)
	)

	type twin struct {
		pool       *Pool
		data, meta *storage.StatsDevice
	}
	build := func(policy DummyPolicy, seed uint64) twin {
		t.Helper()
		data := storage.NewStatsDevice(storage.NewMemDevice(blockSize, dataBlocks))
		meta := storage.NewStatsDevice(storage.NewMemDevice(blockSize,
			MetaBlocksNeeded(dataBlocks, blockSize)))
		p, err := CreatePool(data, meta, Options{
			Policy:   policy,
			Entropy:  prng.NewSeededEntropy(seed),
			DummySrc: prng.NewSource(seed + 1),
		})
		if err != nil {
			t.Fatalf("CreatePool: %v", err)
		}
		for id, virt := range map[int]uint64{1: 64, 2: 128} {
			if err := p.CreateThin(id, virt); err != nil {
				t.Fatalf("CreateThin(%d): %v", id, err)
			}
		}
		return twin{pool: p, data: data, meta: meta}
	}
	writeBlocks := func(tw twin, thinID int, n int) {
		t.Helper()
		thin, err := tw.pool.Thin(thinID)
		if err != nil {
			t.Fatal(err)
		}
		buf := make([]byte, blockSize)
		for i := 0; i < n; i++ {
			buf[0] = byte(i)
			if err := thin.WriteBlock(uint64(i), buf); err != nil {
				t.Fatalf("thin %d write %d: %v", thinID, i, err)
			}
		}
	}

	// Different entropy seeds on purpose: the equality must hold because of
	// where the counters sit, not because the runs are bitwise replays.
	d := build(quietPolicy{}, 11)
	c := build(&onceBurstPolicy{watch: 1, target: 2, count: hidBlocks}, 22)

	// Pool D: public writes interleaved with hidden writes.
	writeBlocks(d, 1, pubBlocks/2)
	writeBlocks(d, 2, hidBlocks)
	writeBlocks(d, 1, pubBlocks) // overwrites first half, provisions rest
	// Pool C: the burst fires on the very first public provision; later
	// public writes restock the noise stage the burst drained, so both runs
	// end with a full stage.
	writeBlocks(c, 1, pubBlocks/2)
	writeBlocks(c, 1, pubBlocks)

	for _, tw := range []twin{d, c} {
		if err := tw.pool.Commit(); err != nil {
			t.Fatalf("Commit: %v", err)
		}
	}

	vd := publicView(t, d.pool, d.data, d.meta)
	vc := publicView(t, c.pool, c.data, c.meta)

	if vd.provisions != uint64(pubBlocks+hidBlocks) {
		t.Fatalf("pool D provisions = %d, want %d", vd.provisions, pubBlocks+hidBlocks)
	}
	if got, want := vd, vc; got != want {
		t.Fatalf("public telemetry diverges between hidden and dummy runs:\n D: %+v\n C: %+v", got, want)
	}
	// The hidden/dummy split is visible only through the experiments-only
	// accessor, never through the snapshot compared above.
	if d.pool.DummyBlocksWritten() != 0 {
		t.Fatalf("pool D wrote %d dummy blocks, want 0", d.pool.DummyBlocksWritten())
	}
	if c.pool.DummyBlocksWritten() != uint64(hidBlocks) {
		t.Fatalf("pool C dummy blocks = %d, want %d", c.pool.DummyBlocksWritten(), hidBlocks)
	}
}

package thinp

import (
	"errors"
	"sync"
	"testing"

	"mobiceal/internal/prng"
	"mobiceal/internal/storage"
)

// Failure injection: the pool must propagate device errors cleanly and keep
// its in-memory invariants intact, so the caller can retry after the medium
// recovers.
func TestPoolSurvivesDataDeviceWriteFaults(t *testing.T) {
	mem := storage.NewMemDevice(blockSize, 128)
	faulty := storage.NewFaultDevice(mem)
	meta := storage.NewMemDevice(blockSize, MetaBlocksNeeded(128, blockSize))
	p, err := CreatePool(faulty, meta, Options{Entropy: prng.NewSeededEntropy(1)})
	if err != nil {
		t.Fatal(err)
	}
	if err := p.CreateThin(1, 64); err != nil {
		t.Fatal(err)
	}
	thin, err := p.Thin(1)
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, blockSize)
	if err := thin.WriteBlock(0, buf); err != nil {
		t.Fatal(err)
	}
	faulty.FailWritesAfter(0)
	err = thin.WriteBlock(1, buf)
	if !errors.Is(err, storage.ErrInjected) {
		t.Fatalf("err = %v, want ErrInjected", err)
	}
	// Recover and continue: the pool still works.
	faulty.Disarm()
	if err := thin.WriteBlock(2, buf); err != nil {
		t.Fatalf("write after recovery: %v", err)
	}
	if err := p.Commit(); err != nil {
		t.Fatalf("commit after recovery: %v", err)
	}
}

func TestPoolCommitPropagatesMetaFaults(t *testing.T) {
	data := storage.NewMemDevice(blockSize, 128)
	metaMem := storage.NewMemDevice(blockSize, MetaBlocksNeeded(128, blockSize))
	faulty := storage.NewFaultDevice(metaMem)
	p, err := CreatePool(data, faulty, Options{Entropy: prng.NewSeededEntropy(2)})
	if err != nil {
		t.Fatal(err)
	}
	if err := p.CreateThin(1, 64); err != nil {
		t.Fatal(err)
	}
	faulty.FailWritesAfter(0)
	if err := p.Commit(); !errors.Is(err, storage.ErrInjected) {
		t.Fatalf("commit err = %v, want ErrInjected", err)
	}
	// A failed metadata commit degrades the pool to read-only: nothing new
	// can become durable, so further commits and mutations are refused even
	// after the device recovers — only a reopen resets the ladder.
	if m, reason := p.Status(); m != PoolReadOnly || reason == "" {
		t.Fatalf("mode after failed commit = %v (%q), want read-only", m, reason)
	}
	faulty.Disarm()
	if err := p.Commit(); !errors.Is(err, ErrReadOnlyMode) {
		t.Fatalf("commit in read-only mode err = %v, want ErrReadOnlyMode", err)
	}
	if err := p.CreateThin(2, 8); !errors.Is(err, ErrReadOnlyMode) {
		t.Fatalf("create-thin in read-only mode err = %v", err)
	}
	// Reads keep working in read-only mode.
	thin, err := p.Thin(1)
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, blockSize)
	if err := thin.ReadBlock(0, buf); err != nil {
		t.Fatalf("read in read-only mode: %v", err)
	}
	// A reopen on the recovered device reloads the last durable state and
	// restores write mode.
	p2, err := OpenPool(data, faulty, Options{Entropy: prng.NewSeededEntropy(2)})
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	if m := p2.Mode(); m != PoolWrite {
		t.Fatalf("mode after reopen = %v, want write", m)
	}
	if err := p2.Commit(); err != nil {
		t.Fatalf("commit after reopen: %v", err)
	}
}

func TestThinReadFaultPropagates(t *testing.T) {
	mem := storage.NewMemDevice(blockSize, 128)
	faulty := storage.NewFaultDevice(mem)
	meta := storage.NewMemDevice(blockSize, MetaBlocksNeeded(128, blockSize))
	p, err := CreatePool(faulty, meta, Options{Entropy: prng.NewSeededEntropy(3)})
	if err != nil {
		t.Fatal(err)
	}
	if err := p.CreateThin(1, 64); err != nil {
		t.Fatal(err)
	}
	thin, err := p.Thin(1)
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, blockSize)
	if err := thin.WriteBlock(5, buf); err != nil {
		t.Fatal(err)
	}
	faulty.FailReadsAfter(0)
	if err := thin.ReadBlock(5, buf); !errors.Is(err, storage.ErrInjected) {
		t.Fatalf("read err = %v, want ErrInjected", err)
	}
	// Unprovisioned reads never touch the device: they still succeed.
	if err := thin.ReadBlock(50, buf); err != nil {
		t.Fatalf("unprovisioned read during device failure: %v", err)
	}
}

// Concurrency: parallel writers to different thin volumes must never
// double-allocate or corrupt each other. Run with -race for full value.
func TestPoolConcurrentWriters(t *testing.T) {
	data := storage.NewMemDevice(blockSize, 4096)
	meta := storage.NewMemDevice(blockSize, MetaBlocksNeeded(4096, blockSize))
	p, err := CreatePool(data, meta, Options{
		Allocator: NewRandomAllocator(prng.NewSource(7)),
		Entropy:   prng.NewSeededEntropy(7),
	})
	if err != nil {
		t.Fatal(err)
	}
	const writers = 4
	const blocksPerWriter = 100
	for id := 1; id <= writers; id++ {
		if err := p.CreateThin(id, 1024); err != nil {
			t.Fatal(err)
		}
	}
	var wg sync.WaitGroup
	errCh := make(chan error, writers)
	for id := 1; id <= writers; id++ {
		id := id
		wg.Add(1)
		go func() {
			defer wg.Done()
			thin, err := p.Thin(id)
			if err != nil {
				errCh <- err
				return
			}
			buf := make([]byte, blockSize)
			for i := range buf {
				buf[i] = byte(id)
			}
			for vb := uint64(0); vb < blocksPerWriter; vb++ {
				if err := thin.WriteBlock(vb, buf); err != nil {
					errCh <- err
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Fatal(err)
	}
	if got := p.AllocatedBlocks(); got != writers*blocksPerWriter {
		t.Fatalf("allocated = %d, want %d", got, writers*blocksPerWriter)
	}
	// Every volume reads back its own fill byte.
	buf := make([]byte, blockSize)
	for id := 1; id <= writers; id++ {
		thin, err := p.Thin(id)
		if err != nil {
			t.Fatal(err)
		}
		for vb := uint64(0); vb < blocksPerWriter; vb++ {
			if err := thin.ReadBlock(vb, buf); err != nil {
				t.Fatal(err)
			}
			if buf[0] != byte(id) || buf[blockSize-1] != byte(id) {
				t.Fatalf("volume %d block %d holds %d's data", id, vb, buf[0])
			}
		}
	}
	// All physical blocks distinct across volumes.
	seen := map[uint64]bool{}
	for id := 1; id <= writers; id++ {
		pbs, err := p.PhysicalBlocks(id)
		if err != nil {
			t.Fatal(err)
		}
		for _, pb := range pbs {
			if seen[pb] {
				t.Fatalf("physical block %d owned twice", pb)
			}
			seen[pb] = true
		}
	}
}

// Property-flavored: interleaved discards and writes keep bitmap accounting
// exact.
func TestPoolDiscardWriteInterleavingAccounting(t *testing.T) {
	data := storage.NewMemDevice(blockSize, 512)
	meta := storage.NewMemDevice(blockSize, MetaBlocksNeeded(512, blockSize))
	p, err := CreatePool(data, meta, Options{
		Allocator: NewRandomAllocator(prng.NewSource(8)),
		Entropy:   prng.NewSeededEntropy(8),
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := p.CreateThin(1, 256); err != nil {
		t.Fatal(err)
	}
	thin, err := p.Thin(1)
	if err != nil {
		t.Fatal(err)
	}
	src := prng.NewSource(9)
	live := map[uint64]bool{}
	buf := make([]byte, blockSize)
	for i := 0; i < 2000; i++ {
		vb := src.Uint64n(256)
		if src.Float64() < 0.6 {
			if err := thin.WriteBlock(vb, buf); err != nil {
				t.Fatal(err)
			}
			live[vb] = true
		} else {
			if err := thin.Discard(vb); err != nil {
				t.Fatal(err)
			}
			delete(live, vb)
		}
		if i%500 == 0 {
			if err := p.Commit(); err != nil {
				t.Fatal(err)
			}
		}
	}
	if got := p.AllocatedBlocks(); got != uint64(len(live)) {
		t.Fatalf("allocated = %d, live = %d", got, len(live))
	}
	mapped, err := p.MappedBlocks(1)
	if err != nil {
		t.Fatal(err)
	}
	if mapped != uint64(len(live)) {
		t.Fatalf("mapped = %d, live = %d", mapped, len(live))
	}
	if err := p.CheckIntegrity(); err != nil {
		t.Fatalf("integrity after interleaving: %v", err)
	}
}

func TestCheckIntegrityDetectsDoubleOwnership(t *testing.T) {
	p, _, _ := newTestPool(t, 64, Options{})
	if err := p.CreateThin(1, 32); err != nil {
		t.Fatal(err)
	}
	if err := p.CreateThin(2, 32); err != nil {
		t.Fatal(err)
	}
	thin, err := p.Thin(1)
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, blockSize)
	if err := thin.WriteBlock(0, buf); err != nil {
		t.Fatal(err)
	}
	if err := p.CheckIntegrity(); err != nil {
		t.Fatalf("clean pool flagged: %v", err)
	}
	// Corrupt: alias thin 1's physical block into thin 2's mapping.
	p.mu.Lock()
	pb, _ := p.thins[1].pt.get(0)
	p.thins[2].pt.set(9, pb)
	p.mu.Unlock()
	if err := p.CheckIntegrity(); err == nil {
		t.Fatal("double ownership not detected")
	}
}

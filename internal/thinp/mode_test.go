package thinp

import (
	"errors"
	"testing"
	"time"

	"mobiceal/internal/prng"
	"mobiceal/internal/storage"
)

// tinyPool builds a pool with dataBlocks data blocks and one thin (id 1)
// spanning virt virtual blocks.
func tinyPool(t *testing.T, dataBlocks, virt uint64, opts Options) (*Pool, *Thin) {
	t.Helper()
	if opts.Entropy == nil {
		opts.Entropy = prng.NewSeededEntropy(99)
	}
	data := storage.NewMemDevice(blockSize, dataBlocks)
	meta := storage.NewMemDevice(blockSize, MetaBlocksNeeded(dataBlocks, blockSize))
	p, err := CreatePool(data, meta, opts)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.CreateThin(1, virt); err != nil {
		t.Fatal(err)
	}
	thin, err := p.Thin(1)
	if err != nil {
		t.Fatal(err)
	}
	return p, thin
}

// TestModeOutOfDataSpaceAndSameTxRecovery: exhausting the data device moves
// the ladder to out-of-data-space; overwrites and reads still work there; a
// discard within the transaction returns the pool to write mode.
func TestModeOutOfDataSpaceAndSameTxRecovery(t *testing.T) {
	p, thin := tinyPool(t, 8, 16, Options{})
	buf := make([]byte, blockSize)
	for i := uint64(0); i < 8; i++ {
		if err := thin.WriteBlock(i, buf); err != nil {
			t.Fatalf("fill write %d: %v", i, err)
		}
	}
	if m := p.Mode(); m != PoolWrite {
		t.Fatalf("mode while full but unprovoked = %v", m)
	}
	// Default NoSpaceTimeout (0) fails fast with ErrNoSpace and latches OODS.
	if err := thin.WriteBlock(8, buf); !errors.Is(err, ErrNoSpace) {
		t.Fatalf("overcommit write err = %v, want ErrNoSpace", err)
	}
	if m, reason := p.Status(); m != PoolOutOfDataSpace || reason == "" {
		t.Fatalf("mode = %v (%q), want out-of-data-space", m, reason)
	}
	// Overwrites of provisioned blocks and reads proceed in OODS.
	if err := thin.WriteBlock(3, buf); err != nil {
		t.Fatalf("overwrite in OODS: %v", err)
	}
	if err := thin.ReadBlock(3, buf); err != nil {
		t.Fatalf("read in OODS: %v", err)
	}
	// Commits too — that is how reclaim becomes durable.
	if err := p.Commit(); err != nil {
		t.Fatalf("commit in OODS: %v", err)
	}
	// Blocks freed within the current transaction recover the pool... but
	// the commit above made the allocations durable, so this discard
	// quarantines and recovery waits for the next commit.
	if err := thin.Discard(0); err != nil {
		t.Fatalf("discard: %v", err)
	}
	if m := p.Mode(); m != PoolOutOfDataSpace {
		t.Fatalf("mode after quarantined free = %v, want still OODS", m)
	}
	if err := p.Commit(); err != nil {
		t.Fatalf("commit releasing quarantine: %v", err)
	}
	if m := p.Mode(); m != PoolWrite {
		t.Fatalf("mode after quarantine release = %v, want write", m)
	}
	if err := thin.WriteBlock(8, buf); err != nil {
		t.Fatalf("write after recovery: %v", err)
	}
}

// TestModeSameTransactionDiscardRecovers: a free of a block allocated in
// the same transaction returns to the allocator immediately and recovers
// the pool without a commit.
func TestModeSameTransactionDiscardRecovers(t *testing.T) {
	p, thin := tinyPool(t, 4, 8, Options{})
	buf := make([]byte, blockSize)
	for i := uint64(0); i < 4; i++ {
		if err := thin.WriteBlock(i, buf); err != nil {
			t.Fatal(err)
		}
	}
	if err := thin.WriteBlock(4, buf); !errors.Is(err, ErrNoSpace) {
		t.Fatalf("overcommit err = %v", err)
	}
	if err := thin.Discard(1); err != nil {
		t.Fatal(err)
	}
	if m := p.Mode(); m != PoolWrite {
		t.Fatalf("mode after same-tx free = %v, want write (no commit needed)", m)
	}
	if err := thin.WriteBlock(4, buf); err != nil {
		t.Fatalf("write after recovery: %v", err)
	}
}

// TestNoSpaceTimeoutQueuesWriter: with NoSpaceTimeout set, a writer that
// hits the full pool parks and completes once a concurrent discard
// reclaims space — dm-thin's queue_if_no_space with no_space_timeout.
func TestNoSpaceTimeoutQueuesWriter(t *testing.T) {
	p, thin := tinyPool(t, 4, 8, Options{NoSpaceTimeout: 5 * time.Second})
	buf := make([]byte, blockSize)
	for i := uint64(0); i < 4; i++ {
		if err := thin.WriteBlock(i, buf); err != nil {
			t.Fatal(err)
		}
	}
	done := make(chan error, 1)
	go func() { done <- thin.WriteBlock(5, buf) }()
	// Give the writer time to park, then reclaim.
	time.Sleep(20 * time.Millisecond)
	if err := thin.Discard(0); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("queued write err = %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("queued write never woke after reclaim")
	}
	if m := p.Mode(); m != PoolWrite {
		t.Fatalf("mode after reclaim = %v", m)
	}
}

// TestNoSpaceTimeoutExpiry: when no reclaim arrives within NoSpaceTimeout
// the queued write fails with ErrNoSpace and the pool latches fail-fast —
// later writers error immediately instead of queueing again.
func TestNoSpaceTimeoutExpiry(t *testing.T) {
	p, thin := tinyPool(t, 4, 8, Options{NoSpaceTimeout: 30 * time.Millisecond})
	buf := make([]byte, blockSize)
	for i := uint64(0); i < 4; i++ {
		if err := thin.WriteBlock(i, buf); err != nil {
			t.Fatal(err)
		}
	}
	t0 := time.Now()
	if err := thin.WriteBlock(5, buf); !errors.Is(err, ErrNoSpace) {
		t.Fatalf("queued write err = %v, want ErrNoSpace", err)
	}
	if time.Since(t0) < 30*time.Millisecond {
		t.Fatal("write failed before the no-space timeout elapsed")
	}
	// Fail-fast is latched: the next writer does not wait the timeout out.
	t0 = time.Now()
	if err := thin.WriteBlock(6, buf); !errors.Is(err, ErrNoSpace) {
		t.Fatalf("post-expiry write err = %v", err)
	}
	if time.Since(t0) > 20*time.Millisecond {
		t.Fatal("post-expiry write queued again instead of failing fast")
	}
	// Reclaim clears the latch and write mode resumes.
	if err := thin.Discard(2); err != nil {
		t.Fatal(err)
	}
	if err := thin.WriteBlock(5, buf); err != nil {
		t.Fatalf("write after reclaim: %v", err)
	}
	if m := p.Mode(); m != PoolWrite {
		t.Fatalf("mode = %v", m)
	}
}

// TestModeTransientMetaFaultAbsorbedByCommitRetry: a one-shot transient
// fault on the metadata slot write is retried inside commitOnce; the commit
// succeeds and the ladder never moves.
func TestModeTransientMetaFaultAbsorbedByCommitRetry(t *testing.T) {
	data := storage.NewMemDevice(blockSize, 64)
	metaMem := storage.NewMemDevice(blockSize, MetaBlocksNeeded(64, blockSize))
	flaky := storage.NewFlakyDevice(metaMem, storage.FlakyOptions{Seed: 5})
	p, err := CreatePool(data, flaky, Options{Entropy: prng.NewSeededEntropy(5)})
	if err != nil {
		t.Fatal(err)
	}
	if err := p.CreateThin(1, 32); err != nil {
		t.Fatal(err)
	}
	thin, err := p.Thin(1)
	if err != nil {
		t.Fatal(err)
	}
	if err := thin.WriteBlock(0, make([]byte, blockSize)); err != nil {
		t.Fatal(err)
	}
	// Fault the very next metadata write op, transient class.
	flaky.FailOpAt(storage.FlakyWrite, flaky.OpCount(storage.FlakyWrite), storage.ErrTransient)
	if err := p.Commit(); err != nil {
		t.Fatalf("commit with transient meta fault: %v", err)
	}
	if m := p.Mode(); m != PoolWrite {
		t.Fatalf("mode = %v, want write (transient fault absorbed)", m)
	}
	// A transient sync hiccup is absorbed the same way.
	flaky.FailOpAt(storage.FlakySync, flaky.OpCount(storage.FlakySync), storage.ErrTransient)
	if err := thin.WriteBlock(1, make([]byte, blockSize)); err != nil {
		t.Fatal(err)
	}
	if err := p.Commit(); err != nil {
		t.Fatalf("commit with transient sync fault: %v", err)
	}
	if m := p.Mode(); m != PoolWrite {
		t.Fatalf("mode after sync hiccup = %v", m)
	}
}

// TestModeFailStopsEverything: PoolFail gates reads, writes, discards and
// commits. (Fail is reached through post-flip bookkeeping corruption, which
// no device fault can trigger from outside; force the ladder directly.)
func TestModeFailStopsEverything(t *testing.T) {
	p, thin := tinyPool(t, 8, 16, Options{})
	buf := make([]byte, blockSize)
	if err := thin.WriteBlock(0, buf); err != nil {
		t.Fatal(err)
	}
	p.mu.Lock()
	p.setModeLocked(PoolFail, "forced by test")
	p.mu.Unlock()
	if err := thin.ReadBlock(0, buf); !errors.Is(err, ErrPoolFail) {
		t.Fatalf("read err = %v, want ErrPoolFail", err)
	}
	if err := thin.WriteBlock(1, buf); !errors.Is(err, ErrPoolFail) {
		t.Fatalf("write err = %v", err)
	}
	if err := thin.Discard(0); !errors.Is(err, ErrPoolFail) {
		t.Fatalf("discard err = %v", err)
	}
	if err := p.Commit(); !errors.Is(err, ErrPoolFail) {
		t.Fatalf("commit err = %v", err)
	}
	// The ladder never de-escalates from Fail.
	p.mu.Lock()
	p.setModeLocked(PoolReadOnly, "attempted demotion")
	p.maybeRecoverSpaceLocked()
	p.mu.Unlock()
	if m := p.Mode(); m != PoolFail {
		t.Fatalf("mode demoted from fail to %v", m)
	}
}

// TestModeStrings pins the operator-facing names.
func TestModeStrings(t *testing.T) {
	want := map[PoolMode]string{
		PoolWrite:          "write",
		PoolOutOfDataSpace: "out-of-data-space",
		PoolReadOnly:       "read-only",
		PoolFail:           "fail",
	}
	for m, s := range want {
		if m.String() != s {
			t.Fatalf("%d.String() = %q, want %q", int(m), m.String(), s)
		}
	}
}

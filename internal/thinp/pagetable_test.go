package thinp

import (
	"math/rand"
	"testing"
)

// TestPageTableAgainstMapModel drives random set/delete traffic through the
// page table and a reference map, checking lookups, count, rank, ordered
// iteration and selectUnmapped against brute force at every step boundary.
func TestPageTableAgainstMapModel(t *testing.T) {
	const virt = 3*ptLeafSize + 37 // partial final leaf
	pt := newPageTable(virt)
	model := map[uint64]uint64{}
	rng := rand.New(rand.NewSource(42))

	check := func() {
		t.Helper()
		if pt.count != uint64(len(model)) {
			t.Fatalf("count = %d, want %d", pt.count, len(model))
		}
		// Lookups and rank at a sample of positions.
		var rank uint64
		var ordered []uint64
		for vb := uint64(0); vb < virt; vb++ {
			pb, ok := pt.get(vb)
			wpb, wok := model[vb]
			if ok != wok || (ok && pb != wpb) {
				t.Fatalf("get(%d) = %d,%v want %d,%v", vb, pb, ok, wpb, wok)
			}
			if vb%31 == 0 {
				if got := pt.rank(vb); got != rank {
					t.Fatalf("rank(%d) = %d, want %d", vb, got, rank)
				}
			}
			if ok {
				rank++
				ordered = append(ordered, vb)
			}
		}
		// Ordered iteration.
		var walked []uint64
		pt.forEach(func(vb, pb uint64) bool {
			if model[vb] != pb {
				t.Fatalf("forEach(%d) = %d, want %d", vb, pb, model[vb])
			}
			walked = append(walked, vb)
			return true
		})
		if len(walked) != len(ordered) {
			t.Fatalf("forEach visited %d entries, want %d", len(walked), len(ordered))
		}
		for i := range walked {
			if walked[i] != ordered[i] {
				t.Fatalf("forEach order diverges at %d: %d != %d", i, walked[i], ordered[i])
			}
		}
		// selectUnmapped against the brute-force free list.
		var free []uint64
		for vb := uint64(0); vb < virt; vb++ {
			if _, ok := model[vb]; !ok {
				free = append(free, vb)
			}
		}
		for _, r := range []uint64{0, 1, uint64(len(free)) / 2, uint64(len(free)) - 1} {
			if int(r) >= len(free) {
				continue
			}
			got, ok := pt.selectUnmapped(r)
			if !ok || got != free[r] {
				t.Fatalf("selectUnmapped(%d) = %d,%v want %d", r, got, ok, free[r])
			}
		}
		if _, ok := pt.selectUnmapped(uint64(len(free))); ok {
			t.Fatal("selectUnmapped past the free count succeeded")
		}
	}

	check()
	for step := 0; step < 40; step++ {
		for i := 0; i < 200; i++ {
			vb := uint64(rng.Intn(virt))
			if rng.Intn(3) == 0 {
				deleted := pt.delete(vb)
				_, had := model[vb]
				if deleted != had {
					t.Fatalf("delete(%d) = %v, want %v", vb, deleted, had)
				}
				delete(model, vb)
			} else {
				pb := uint64(rng.Intn(1 << 20))
				pt.set(vb, pb)
				model[vb] = pb
			}
		}
		if step%8 == 0 {
			check()
		}
	}
	check()

	// Fill the table completely: selectUnmapped must report exhaustion.
	for vb := uint64(0); vb < virt; vb++ {
		pt.set(vb, vb)
	}
	if pt.count != virt {
		t.Fatalf("full count = %d, want %d", pt.count, virt)
	}
	if _, ok := pt.selectUnmapped(0); ok {
		t.Fatal("selectUnmapped on a full table succeeded")
	}
	// Free exactly one block near the end; it must be selectable.
	pt.delete(virt - 2)
	got, ok := pt.selectUnmapped(0)
	if !ok || got != virt-2 {
		t.Fatalf("selectUnmapped(0) = %d,%v want %d", got, ok, virt-2)
	}
}

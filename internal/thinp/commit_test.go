package thinp

import (
	"bytes"
	"math/rand"
	"testing"

	"mobiceal/internal/prng"
	"mobiceal/internal/storage"
)

// metaImage reads the full metadata device content.
func metaImage(t *testing.T, meta storage.Device) []byte {
	t.Helper()
	raw, err := storage.ReadFull(meta, 0, meta.NumBlocks())
	if err != nil {
		t.Fatalf("reading metadata image: %v", err)
	}
	return raw
}

// driveMutations applies a deterministic mutation workload: writes that
// provision, overwrites, discards and a thin create/delete.
func driveMutations(t *testing.T, p *Pool, seed int64) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	thin, err := p.Thin(1)
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, blockSize)
	for i := 0; i < 120; i++ {
		vb := uint64(rng.Intn(int(thin.NumBlocks())))
		switch rng.Intn(4) {
		case 0, 1:
			rng.Read(buf)
			if err := thin.WriteBlock(vb, buf); err != nil {
				t.Fatal(err)
			}
		case 2:
			n := rng.Intn(8) + 1
			if vb+uint64(n) > thin.NumBlocks() {
				vb = thin.NumBlocks() - uint64(n)
			}
			big := make([]byte, n*blockSize)
			rng.Read(big)
			if err := thin.WriteBlocks(vb, big); err != nil {
				t.Fatal(err)
			}
		case 3:
			if err := thin.Discard(vb); err != nil {
				t.Fatal(err)
			}
		}
	}
}

// TestIncrementalCommitImageEquivalence drives two identical pools through
// the same workload, committing one incrementally and the other with full
// rewrites, and requires byte-identical metadata images at every commit
// point — the on-disk format must not betray which path wrote it.
func TestIncrementalCommitImageEquivalence(t *testing.T) {
	build := func() (*Pool, *storage.MemDevice) {
		data := storage.NewMemDevice(blockSize, 2048)
		meta := storage.NewMemDevice(blockSize, MetaBlocksNeeded(2048, blockSize))
		p, err := CreatePool(data, meta, Options{Entropy: prng.NewSeededEntropy(21), DummySrc: prng.NewSource(22)})
		if err != nil {
			t.Fatalf("CreatePool: %v", err)
		}
		if err := p.CreateThin(1, 512); err != nil {
			t.Fatal(err)
		}
		if err := p.CreateThin(7, 128); err != nil {
			t.Fatal(err)
		}
		return p, meta
	}
	inc, incMeta := build()
	full, fullMeta := build()

	for round := int64(0); round < 5; round++ {
		driveMutations(t, inc, 100+round)
		driveMutations(t, full, 100+round)
		if err := inc.Commit(); err != nil {
			t.Fatalf("incremental commit: %v", err)
		}
		if err := full.CommitFull(); err != nil {
			t.Fatalf("full commit: %v", err)
		}
		if !bytes.Equal(metaImage(t, incMeta), metaImage(t, fullMeta)) {
			t.Fatalf("round %d: incremental and full images differ", round)
		}
	}

	// A commit with no changes only advances the transaction id.
	beforeTx := inc.TransactionID()
	if err := inc.Commit(); err != nil {
		t.Fatal(err)
	}
	if err := full.CommitFull(); err != nil {
		t.Fatal(err)
	}
	if inc.TransactionID() != beforeTx+1 {
		t.Fatalf("txID = %d, want %d", inc.TransactionID(), beforeTx+1)
	}
	if !bytes.Equal(metaImage(t, incMeta), metaImage(t, fullMeta)) {
		t.Fatal("no-op commit images differ")
	}

	// Deleting a thin forces the structural path; images must still agree.
	for _, p := range []*Pool{inc, full} {
		if err := p.DeleteThin(7); err != nil {
			t.Fatal(err)
		}
	}
	if err := inc.Commit(); err != nil {
		t.Fatal(err)
	}
	if err := full.CommitFull(); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(metaImage(t, incMeta), metaImage(t, fullMeta)) {
		t.Fatal("post-delete images differ")
	}
}

// TestIncrementalCommitRoundTrip checks that OpenPool loads a pool written
// by a mix of incremental commits and reproduces its exact state.
func TestIncrementalCommitRoundTrip(t *testing.T) {
	data := storage.NewMemDevice(blockSize, 2048)
	meta := storage.NewMemDevice(blockSize, MetaBlocksNeeded(2048, blockSize))
	p, err := CreatePool(data, meta, Options{Entropy: prng.NewSeededEntropy(31)})
	if err != nil {
		t.Fatal(err)
	}
	if err := p.CreateThin(1, 512); err != nil {
		t.Fatal(err)
	}
	for round := int64(0); round < 3; round++ {
		driveMutations(t, p, 200+round)
		if err := p.Commit(); err != nil {
			t.Fatal(err)
		}
	}
	vbs, err := p.MappedVBlocks(1)
	if err != nil {
		t.Fatal(err)
	}
	pbs, err := p.PhysicalBlocks(1)
	if err != nil {
		t.Fatal(err)
	}

	re, err := OpenPool(data, meta, Options{Entropy: prng.NewSeededEntropy(32)})
	if err != nil {
		t.Fatalf("OpenPool after incremental commits: %v", err)
	}
	if re.TransactionID() != p.TransactionID() {
		t.Fatalf("txID = %d, want %d", re.TransactionID(), p.TransactionID())
	}
	if err := re.CheckIntegrity(); err != nil {
		t.Fatalf("reloaded pool integrity: %v", err)
	}
	reVbs, err := re.MappedVBlocks(1)
	if err != nil {
		t.Fatal(err)
	}
	rePbs, err := re.PhysicalBlocks(1)
	if err != nil {
		t.Fatal(err)
	}
	if len(reVbs) != len(vbs) || len(rePbs) != len(pbs) {
		t.Fatalf("reloaded mapping sizes %d/%d, want %d/%d", len(reVbs), len(rePbs), len(vbs), len(pbs))
	}
	for i := range vbs {
		if reVbs[i] != vbs[i] || rePbs[i] != pbs[i] {
			t.Fatalf("mapping entry %d differs after reload", i)
		}
	}
	// A reopened pool's arena primes straight from the loaded image, so it
	// commits incrementally from the first transaction; the first commit
	// still rewrites the (unknown) inactive slot in full via its pending
	// set. Both must keep round-tripping.
	thin, err := re.Thin(1)
	if err != nil {
		t.Fatal(err)
	}
	if err := thin.WriteBlocks(0, make([]byte, 4*blockSize)); err != nil {
		t.Fatal(err)
	}
	if err := re.Commit(); err != nil {
		t.Fatal(err)
	}
	if err := thin.WriteBlocks(8, make([]byte, 4*blockSize)); err != nil {
		t.Fatal(err)
	}
	if err := re.Commit(); err != nil {
		t.Fatal(err)
	}
	re2, err := OpenPool(data, meta, Options{Entropy: prng.NewSeededEntropy(33)})
	if err != nil {
		t.Fatal(err)
	}
	if err := re2.CheckIntegrity(); err != nil {
		t.Fatal(err)
	}
}

// TestIncrementalCommitWriteDelta verifies the point of the exercise: on a
// pool with thousands of mapped blocks, a commit after touching a handful
// of blocks writes only a handful of metadata blocks, while a full commit
// rewrites the whole image.
func TestIncrementalCommitWriteDelta(t *testing.T) {
	const dataBlocks = 16384
	data := storage.NewMemDevice(blockSize, dataBlocks)
	metaStats := storage.NewStatsDevice(storage.NewMemDevice(blockSize, MetaBlocksNeeded(dataBlocks, blockSize)))
	p, err := CreatePool(data, metaStats, Options{Entropy: prng.NewSeededEntropy(41)})
	if err != nil {
		t.Fatal(err)
	}
	if err := p.CreateThin(1, dataBlocks); err != nil {
		t.Fatal(err)
	}
	thin, err := p.Thin(1)
	if err != nil {
		t.Fatal(err)
	}
	// Map 10k blocks and commit them.
	if err := thin.WriteBlocks(0, make([]byte, 10000*blockSize)); err != nil {
		t.Fatal(err)
	}
	if err := p.Commit(); err != nil {
		t.Fatal(err)
	}

	metaStats.ResetStats()
	if err := p.CommitFull(); err != nil {
		t.Fatal(err)
	}
	fullWrites := metaStats.Stats().Writes
	// Touch one already-mapped block (no metadata change) plus one fresh
	// block, then commit incrementally.
	if err := thin.WriteBlocks(10000, make([]byte, blockSize)); err != nil {
		t.Fatal(err)
	}
	metaStats.ResetStats()
	if err := p.Commit(); err != nil {
		t.Fatal(err)
	}
	deltaWrites := metaStats.Stats().Writes

	if fullWrites < 100 {
		t.Fatalf("full commit wrote %d blocks; expected a large image", fullWrites)
	}
	if deltaWrites*10 > fullWrites {
		t.Fatalf("incremental commit wrote %d of %d blocks; want <10%%", deltaWrites, fullWrites)
	}

	// No-op commits: the first still carries the previous delta into the
	// other A/B slot; the second finds its target slot already identical
	// and writes exactly one block — the superblock flip.
	metaStats.ResetStats()
	if err := p.Commit(); err != nil {
		t.Fatal(err)
	}
	firstNoop := metaStats.Stats().Writes
	if firstNoop*10 > fullWrites {
		t.Fatalf("first no-op commit wrote %d of %d blocks; want <10%%", firstNoop, fullWrites)
	}
	metaStats.ResetStats()
	if err := p.Commit(); err != nil {
		t.Fatal(err)
	}
	if got := metaStats.Stats().Writes; got != 1 {
		t.Fatalf("steady-state no-op commit wrote %d blocks, want 1", got)
	}
}

package thinp

import (
	"testing"

	"mobiceal/internal/prng"
	"mobiceal/internal/storage"
)

// TestThinOverwriteNoAllocs pins the steady-state allocation cost of the
// thin I/O hot path: overwriting and reading an already-provisioned block
// through the scatter-gather contract must not allocate. The stack-backed
// small-vec in storage.BlockVec (single-segment vecs and Slice results
// carry their segment inline) is what keeps this at zero; this assertion
// keeps it from regressing.
func TestThinOverwriteNoAllocs(t *testing.T) {
	data := storage.NewMemDevice(4096, 1<<12)
	meta := storage.NewMemDevice(4096, MetaBlocksNeeded(1<<12, 4096))
	p, err := CreatePool(data, meta, Options{Entropy: prng.NewSeededEntropy(1)})
	if err != nil {
		t.Fatal(err)
	}
	if err := p.CreateThin(1, 1<<12); err != nil {
		t.Fatal(err)
	}
	thin, err := p.Thin(1)
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 4*4096)
	v := storage.Vec(4096, buf)
	// Provision the blocks and materialize the MemDevice slabs so the
	// measured loop is pure steady-state overwrite.
	if err := thin.WriteBlocksVec(0, v); err != nil {
		t.Fatal(err)
	}
	if allocs := testing.AllocsPerRun(100, func() {
		if err := thin.WriteBlocksVec(0, v); err != nil {
			t.Fatal(err)
		}
	}); allocs != 0 {
		t.Errorf("overwrite WriteBlocksVec allocates %.1f/op, want 0", allocs)
	}
	if allocs := testing.AllocsPerRun(100, func() {
		if err := thin.ReadBlocksVec(0, v); err != nil {
			t.Fatal(err)
		}
	}); allocs != 0 {
		t.Errorf("ReadBlocksVec allocates %.1f/op, want 0", allocs)
	}
	// The WriteBlock/ReadBlock convenience wrappers build their
	// single-segment vec inline; the small-vec keeps them free too.
	one := make([]byte, 4096)
	if allocs := testing.AllocsPerRun(100, func() {
		if err := thin.WriteBlock(7, one); err != nil {
			t.Fatal(err)
		}
	}); allocs != 0 {
		t.Errorf("overwrite WriteBlock allocates %.1f/op, want 0", allocs)
	}
	if allocs := testing.AllocsPerRun(100, func() {
		if err := thin.ReadBlock(7, one); err != nil {
			t.Fatal(err)
		}
	}); allocs != 0 {
		t.Errorf("ReadBlock allocates %.1f/op, want 0", allocs)
	}
}

package thinp

import (
	"fmt"
	"sync"
	"time"

	"mobiceal/internal/obs"
)

// Allocation sharding — the XFS allocation-group analogue applied to the
// thin pool's single data space. The pool's bitmap words are partitioned
// into N contiguous, disjoint shards; each shard owns its word range's
// mutation lock, its own free-block gauge, and its own slice of the
// transaction delta (txAlloc/txFree/dirty bitmap words). Writers touch one
// shard lock per allocation instead of the pool's exclusive mapping lock,
// so provisioning throughput scales with writers until the shards
// themselves contend.
//
// The shard split is a RUNTIME-ONLY view: the on-disk v2 format still
// carries one logical bitmap, and commits drain every shard's delta back
// into the pool-global sets (drainDirtyLocked) before the arena fold, so
// the A/B image a sharded pool writes is byte-identical to the image an
// unsharded pool writes for the same logical history.
//
// The deniability-critical property is the random picker: MobiCeal's
// uniform-random placement is the load-bearing reason physical layout
// carries no volume information (paper Sec. V-A), so the sharded picker
// must stay distribution-equivalent to the unsharded one. It therefore
// draws ONE rank uniformly over the GLOBAL free count — never
// uniform-per-shard — and decomposes the rank across the shards' free
// gauges. Because shards are ascending and contiguous, the decomposition
// selects exactly the block the unsharded bm.NthFree(rank) would, and the
// PRNG consumes exactly one draw per allocation either way: a sharded and
// an unsharded pool driven by the same seed and serial workload place
// every block identically (pinned by TestShardedUnshardedEquivalence).
type allocShard struct {
	mu sync.Mutex
	// w0/w1 bound the bitmap words [w0, w1) this shard owns; lo/hi are the
	// corresponding block numbers [lo, hi). Word ranges never split a word
	// between shards, so a shard's bitmap mutations under mu can never race
	// another shard's read-modify-write of the same word.
	w0, w1 int
	lo, hi uint64

	// free gauges the shard's allocator-visible free blocks (the allocBM
	// view: committed-free minus the uncommitted-free quarantine). Writes
	// happen under mu; lock-free reads serve the rank decomposition and the
	// telemetry snapshot, with the shard lock re-verifying before a claim.
	free obs.Gauge
	// steals counts allocations this shard served for a caller whose home
	// shard was empty (sharded-sequential work stealing).
	steals obs.Counter
	// lockLat is the allocation-path acquire latency of mu — the direct
	// contention signal for the per-shard gauges surface.
	lockLat obs.Histogram

	// cursor is the sharded-sequential roving cursor, confined to [lo, hi).
	cursor uint64

	// Per-shard slice of the transaction delta. txAlloc records blocks
	// allocated since the last commit, txFree quarantines frees of
	// committed state, dirtyBM the bitmap words that changed — the same
	// semantics as the pool-global sets they drain into at commit time
	// (drainDirtyLocked / detachTxLocked).
	txAlloc map[uint64]struct{}
	txFree  map[uint64]struct{}
	dirtyBM map[uint64]struct{}
}

// maxAutoShards caps the automatic shard count. 64 shards saturate the
// writer counts this pool targets (the bench sweeps 1..64 writers) while
// keeping the pick path's gauge snapshot a single cache line sweep.
const maxAutoShards = 64

// autoShardCount picks the shard count for a pool of the given bitmap word
// count: one shard per 8 words (512 blocks) up to maxAutoShards, so tiny
// pools do not fragment into empty shards.
func autoShardCount(words int) int {
	n := words / 8
	if n > maxAutoShards {
		n = maxAutoShards
	}
	if n < 1 {
		n = 1
	}
	return n
}

// initShards builds the runtime shard view over the current bitmaps.
// Called once from CreatePool/OpenPool after bm and allocBM exist, before
// the pool is shared.
//
// Shard-count policy: an explicit Options.Shards wins (clamped to the word
// count). Otherwise the RandomAllocator auto-shards — its sharded pick is
// exactly serial-equivalent to the unsharded one, so sharding is free —
// while the sequential and custom allocators default to one shard, which
// preserves their physical layout and routes every pick through
// Allocator.PickFree exactly as before. A custom allocator cannot be
// decomposed across shards, so it is forced to one shard even when
// Options.Shards asks for more.
func (p *Pool) initShards() {
	words := len(p.bm.words)
	n := p.opts.Shards
	_, random := p.opts.Allocator.(*RandomAllocator)
	_, sequential := p.opts.Allocator.(*SequentialAllocator)
	switch {
	case !random && !sequential:
		n = 1
	case n > 0:
		// explicit override
	case random:
		n = autoShardCount(words)
	default:
		n = 1
	}
	if n > words && words > 0 {
		n = words
	}
	if n < 1 {
		n = 1
	}
	wps := 1
	if words > 0 {
		wps = (words + n - 1) / n
	}
	p.wordsPerShard = wps
	n = 1
	if words > 0 {
		n = (words + wps - 1) / wps
	}
	p.shards = make([]*allocShard, n)
	for i := range p.shards {
		w0 := i * wps
		w1 := w0 + wps
		if w1 > words {
			w1 = words
		}
		lo := uint64(w0) * 64
		hi := uint64(w1) * 64
		if hi > p.bm.nbits {
			hi = p.bm.nbits
		}
		if lo > hi {
			lo = hi
		}
		s := &allocShard{
			w0: w0, w1: w1,
			lo: lo, hi: hi,
			cursor:  lo,
			txAlloc: make(map[uint64]struct{}),
			txFree:  make(map[uint64]struct{}),
			dirtyBM: make(map[uint64]struct{}),
		}
		s.free.Set(int64(p.allocBM.freeInRange(w0, w1)))
		p.shards[i] = s
	}
}

// shardIndexOf returns the index of the shard owning physical block pb.
// pb must be in range.
func (p *Pool) shardIndexOf(pb uint64) int {
	i := int(pb/64) / p.wordsPerShard
	if i >= len(p.shards) {
		i = len(p.shards) - 1
	}
	return i
}

// shardOf returns the shard owning physical block pb. pb must be in range.
func (p *Pool) shardOf(pb uint64) *allocShard {
	return p.shards[p.shardIndexOf(pb)]
}

// lock takes s.mu, recording the acquire latency in the shard's
// contention histogram.
func (s *allocShard) lock() {
	t0 := time.Now()
	s.mu.Lock()
	s.lockLat.Since(t0)
}

// claimShardLocked marks pb allocated in both bitmaps and records it in
// s's transaction delta. Caller holds s.mu and pb lies in s's range.
func (p *Pool) claimShardLocked(s *allocShard, pb uint64) error {
	if err := p.bm.Set(pb); err != nil {
		return fmt.Errorf("thinp: marking block %d: %w", pb, err)
	}
	if err := p.allocBM.Set(pb); err != nil {
		return fmt.Errorf("thinp: marking block %d: %w", pb, err)
	}
	s.free.Dec()
	s.txAlloc[pb] = struct{}{}
	s.dirtyBM[pb/64] = struct{}{}
	return nil
}

// allocate picks and claims one free block through the sharded allocator.
// aff selects the home shard for affinity-based strategies; the random
// strategy deliberately ignores it (uniform placement is the deniability
// property). Caller holds p.mu in either mode.
//
// This is the telemetry choke point for provisioning: real provisions and
// dummy-write allocations both land here, so the public count and latency
// distribution cannot tell them apart (metrics.go). The flight recorder's
// provision stage hangs off the same choke point for the same reason —
// a tagged dummy allocation and a tagged real one emit the identical
// event (stage, op, count only; never the block number).
func (p *Pool) allocate(fid uint64, aff int) (uint64, error) {
	t0 := time.Now()
	pb, err := p.pickAndClaim(aff)
	if err != nil {
		return 0, err
	}
	p.m.Provisions.Inc()
	p.m.AllocLat.Since(t0)
	if fid != 0 {
		p.flight.Record(fid, obs.StageProvision, obs.FOpWrite, 1, obs.ClassNone, 0)
	}
	return pb, nil
}

// pickRedraws bounds how many stale-gauge retries the uniform picker makes
// before falling back to the all-shards-locked exact pick.
const pickRedraws = 16

// pickAndClaim routes one allocation to the strategy-specific sharded
// picker. Errors from the pick wrap as ErrNoSpace, preserving the
// unsharded error chain.
func (p *Pool) pickAndClaim(aff int) (uint64, error) {
	if len(p.shards) == 1 {
		// Single shard: the configured allocator picks directly from the
		// allocator bitmap under the shard lock — exactly the unsharded
		// pool, including for custom allocators.
		s := p.shards[0]
		s.lock()
		defer s.mu.Unlock()
		pb, err := p.opts.Allocator.PickFree(p.allocBM)
		if err != nil {
			return 0, fmt.Errorf("%w: %v", ErrNoSpace, err)
		}
		if err := p.claimShardLocked(s, pb); err != nil {
			return 0, err
		}
		return pb, nil
	}
	switch a := p.opts.Allocator.(type) {
	case *RandomAllocator:
		return p.pickUniform(a)
	case *SequentialAllocator:
		return p.pickAffine(aff)
	}
	// initShards forces one shard for custom allocators; unreachable.
	return 0, fmt.Errorf("%w: %v", ErrNoSpace, ErrBitmapFull)
}

// pickUniform is the sharded random pick: one rank drawn uniformly over
// the GLOBAL free count, decomposed across the shards' free gauges by
// prefix sum, resolved to a block inside the target shard under its lock.
// Globally uniform — never uniform-per-shard — so dummy, public and hidden
// placements stay indistinguishable regardless of how free space skews
// across shards. Under a concurrent mutator the gauge snapshot can go
// stale between the draw and the shard lock; the shard re-verifies under
// its lock and the picker redraws on a miss, falling back to an exact pick
// under all shard locks after pickRedraws rounds.
func (p *Pool) pickUniform(a *RandomAllocator) (uint64, error) {
	var stack [maxAutoShards]uint64
	frees := stack[:0]
	if len(p.shards) > len(stack) {
		frees = make([]uint64, 0, len(p.shards))
	}
	for try := 0; try < pickRedraws; try++ {
		frees = frees[:0]
		total := uint64(0)
		for _, s := range p.shards {
			f := uint64(s.free.Load())
			frees = append(frees, f)
			total += f
		}
		if total == 0 {
			break
		}
		rank := a.drawRank(total)
		var s *allocShard
		local := rank
		for i, f := range frees {
			if local < f {
				s = p.shards[i]
				break
			}
			local -= f
		}
		if s == nil {
			continue // racing release grew a gauge mid-sweep; redraw
		}
		s.lock()
		if local < uint64(s.free.Load()) {
			pb, ok := p.allocBM.nthFreeInRange(s.w0, s.w1, local)
			if ok {
				err := p.claimShardLocked(s, pb)
				s.mu.Unlock()
				return pb, err
			}
		}
		s.mu.Unlock()
		// Stale snapshot: the shard lost free blocks between the gauge read
		// and the lock. Redraw against fresh gauges.
	}
	return p.pickUniformSlow(a)
}

// pickUniformSlow is the uniform picker's ground-truth fallback: all shard
// locks taken in ascending order (the deadlock-free total order), free
// counts recounted from the bitmap, one draw, exact resolution. Reached
// only when the pool is out of space or gauges kept going stale under
// extreme contention.
func (p *Pool) pickUniformSlow(a *RandomAllocator) (uint64, error) {
	for _, s := range p.shards {
		s.lock()
	}
	defer func() {
		for i := len(p.shards) - 1; i >= 0; i-- {
			p.shards[i].mu.Unlock()
		}
	}()
	total := uint64(0)
	for _, s := range p.shards {
		total += p.allocBM.freeInRange(s.w0, s.w1)
	}
	if total == 0 {
		return 0, fmt.Errorf("%w: %v", ErrNoSpace, ErrBitmapFull)
	}
	local := a.drawRank(total)
	for _, s := range p.shards {
		f := p.allocBM.freeInRange(s.w0, s.w1)
		if local < f {
			pb, ok := p.allocBM.nthFreeInRange(s.w0, s.w1, local)
			if !ok {
				return 0, fmt.Errorf("%w: %v", ErrNoSpace, ErrBitmapFull)
			}
			return pb, p.claimShardLocked(s, pb)
		}
		local -= f
	}
	return 0, fmt.Errorf("%w: %v", ErrNoSpace, ErrBitmapFull)
}

// pickAffine is the sharded sequential pick: first-fit from the home
// shard's roving cursor (home = affinity mod shard count), stealing from
// the shard with the most free blocks when the home shard is empty, then
// sweeping the rest. ErrNoSpace semantics stay exact: the pick fails only
// when every shard is empty. Note that explicit sharding changes the
// sequential allocator's physical layout (each affinity fills its own
// region) — which is why sequential pools default to one shard.
func (p *Pool) pickAffine(aff int) (uint64, error) {
	n := len(p.shards)
	if aff < 0 {
		aff = -aff
	}
	home := aff % n
	if pb, ok := p.trySeqShard(p.shards[home]); ok {
		return pb, nil
	}
	// Work-steal from the least-loaded (most free blocks) shard.
	best, bestFree := -1, int64(0)
	for i, s := range p.shards {
		if i == home {
			continue
		}
		if f := s.free.Load(); f > bestFree {
			best, bestFree = i, f
		}
	}
	if best >= 0 {
		if pb, ok := p.trySeqShard(p.shards[best]); ok {
			p.shards[best].steals.Inc()
			return pb, nil
		}
	}
	// Racing allocators may have drained the snapshot's choice; sweep the
	// rest for ground truth before declaring the pool full.
	for i, s := range p.shards {
		if i == home || i == best {
			continue
		}
		if pb, ok := p.trySeqShard(s); ok {
			s.steals.Inc()
			return pb, nil
		}
	}
	return 0, fmt.Errorf("%w: %v", ErrNoSpace, ErrBitmapFull)
}

// trySeqShard attempts one first-fit claim from s's cursor.
func (p *Pool) trySeqShard(s *allocShard) (uint64, bool) {
	s.lock()
	defer s.mu.Unlock()
	if s.free.Load() == 0 {
		return 0, false
	}
	pb, ok := p.allocBM.nextFreeInRange(s.w0, s.w1, s.cursor)
	if !ok {
		return 0, false
	}
	s.cursor = pb + 1
	if err := p.claimShardLocked(s, pb); err != nil {
		return 0, false
	}
	return pb, true
}

// release frees physical block pb through its shard. A block allocated
// within the current transaction returns to the allocator immediately — no
// committed mapping references it — and release reports sameTx true so the
// caller can run space recovery; a block the last commit still maps is
// quarantined in the shard's txFree until the commit recording the free is
// durable, mirroring dm-thin's rule of never reusing a block a committed
// mapping can still reach. Caller holds p.mu in either mode.
func (p *Pool) release(pb uint64) (sameTx bool, err error) {
	if pb >= p.bm.Size() {
		return false, p.bm.Clear(pb) // surfaces the range error
	}
	s := p.shardOf(pb)
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := p.bm.Clear(pb); err != nil {
		return false, err
	}
	if _, thisTx := s.txAlloc[pb]; thisTx {
		delete(s.txAlloc, pb)
		if err := p.allocBM.Clear(pb); err != nil {
			return false, err
		}
		s.free.Inc()
		sameTx = true
	} else {
		s.txFree[pb] = struct{}{}
	}
	s.dirtyBM[pb/64] = struct{}{}
	p.m.Releases.Inc()
	return sameTx, nil
}

// releaseQuarantinedLocked returns one durably-freed block to the
// allocator's view — commit phase 3, after the superblock flip landed.
// Caller holds p.mu exclusively.
func (p *Pool) releaseQuarantinedLocked(pb uint64) error {
	s := p.shardOf(pb)
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := p.allocBM.Clear(pb); err != nil {
		return err
	}
	s.free.Inc()
	return nil
}

// drainDirtyLocked folds every shard's dirty bitmap words and every
// stripe's dirty thin ids into the pool-global delta sets the commit fold
// consumes — level one of the two-level commit door. Caller holds p.mu
// exclusively (commit phase 1), so no fine-grained writer is mutating the
// per-shard state concurrently; the shard/stripe locks are still taken for
// the lock-order discipline's uniformity.
func (p *Pool) drainDirtyLocked() {
	// The len probes run without the shard/stripe locks: p.mu is held
	// exclusively, so no fine-grained writer can be mutating them, and
	// skipping the ~hundred mutex round-trips for untouched shards keeps
	// the drain O(dirty), not O(shards) — it runs on every commit.
	for _, s := range p.shards {
		if len(s.dirtyBM) == 0 {
			continue
		}
		s.mu.Lock()
		for w := range s.dirtyBM {
			p.dirtyBM[w] = struct{}{}
		}
		resetSet(&s.dirtyBM)
		s.mu.Unlock()
	}
	for i := range p.stripes {
		st := &p.stripes[i]
		if len(st.dirty) == 0 {
			continue
		}
		st.mu.Lock()
		for id := range st.dirty {
			p.dirtyThins[id] = struct{}{}
		}
		clear(st.dirty)
		st.mu.Unlock()
	}
}

// detachTxLocked moves every shard's transaction delta into the combined
// maps a commit makes durable, leaving the shards with empty deltas for
// the next transaction. Caller holds p.mu exclusively.
func (p *Pool) detachTxLocked() (alloc, free map[uint64]struct{}) {
	na, nf := 0, 0
	for _, s := range p.shards {
		na += len(s.txAlloc)
		nf += len(s.txFree)
	}
	alloc = make(map[uint64]struct{}, na)
	free = make(map[uint64]struct{}, nf)
	for _, s := range p.shards {
		if len(s.txAlloc) == 0 && len(s.txFree) == 0 {
			continue
		}
		s.mu.Lock()
		for pb := range s.txAlloc {
			alloc[pb] = struct{}{}
		}
		for pb := range s.txFree {
			free[pb] = struct{}{}
		}
		resetSet(&s.txAlloc)
		resetSet(&s.txFree)
		s.mu.Unlock()
	}
	return alloc, free
}

// mergeTxBackLocked routes a failed commit's detached transaction record
// back into the shards, keyed by block ownership — the error-path
// merge-back that keeps a read-only pool's in-memory delta intact for a
// later reopen. Caller holds p.mu exclusively.
func (p *Pool) mergeTxBackLocked(alloc, free map[uint64]struct{}) {
	for pb := range alloc {
		s := p.shardOf(pb)
		s.mu.Lock()
		s.txAlloc[pb] = struct{}{}
		s.mu.Unlock()
	}
	for pb := range free {
		s := p.shardOf(pb)
		s.mu.Lock()
		s.txFree[pb] = struct{}{}
		s.mu.Unlock()
	}
}

// CheckConsistency verifies the sharded allocator's runtime bookkeeping
// against the logical bitmaps:
//
//  1. the shard ranges partition [0, Size()) with no gap or overlap (so no
//     block can be claimed by two shards),
//  2. each shard's free gauge equals a recount of its allocBM range, and
//     the gauges sum to the global allocator-visible free count,
//  3. every block in a shard's txAlloc/txFree delta lies inside that
//     shard's range,
//  4. the allocator view is the committed view plus the quarantine: every
//     block allocated in bm is allocated in allocBM.
//
// The fault-sweep harness runs it beside CheckIntegrity after every
// interesting transition.
func (p *Pool) CheckConsistency() error {
	p.mu.Lock()
	defer p.mu.Unlock()
	var prevHi uint64
	var totalFree uint64
	for i, s := range p.shards {
		if s.lo != prevHi {
			return fmt.Errorf("thinp: shard %d starts at block %d, want %d", i, s.lo, prevHi)
		}
		if s.hi < s.lo {
			return fmt.Errorf("thinp: shard %d range [%d, %d) inverted", i, s.lo, s.hi)
		}
		prevHi = s.hi
		s.mu.Lock()
		gauge := s.free.Load()
		recount := p.allocBM.freeInRange(s.w0, s.w1)
		bad := gauge != int64(recount)
		var rangeErr error
		for pb := range s.txAlloc {
			if pb < s.lo || pb >= s.hi {
				rangeErr = fmt.Errorf("thinp: shard %d claims allocated block %d outside [%d, %d)",
					i, pb, s.lo, s.hi)
				break
			}
		}
		if rangeErr == nil {
			for pb := range s.txFree {
				if pb < s.lo || pb >= s.hi {
					rangeErr = fmt.Errorf("thinp: shard %d claims freed block %d outside [%d, %d)",
						i, pb, s.lo, s.hi)
					break
				}
			}
		}
		s.mu.Unlock()
		if bad {
			return fmt.Errorf("thinp: shard %d free gauge %d != bitmap recount %d", i, gauge, recount)
		}
		if rangeErr != nil {
			return rangeErr
		}
		totalFree += recount
	}
	if prevHi != p.bm.Size() {
		return fmt.Errorf("thinp: shards cover blocks [0, %d) of %d", prevHi, p.bm.Size())
	}
	if totalFree != p.allocBM.Free() {
		return fmt.Errorf("thinp: shard free counts sum to %d, global free is %d",
			totalFree, p.allocBM.Free())
	}
	for w := range p.bm.words {
		if p.bm.words[w]&^p.allocBM.words[w] != 0 {
			return fmt.Errorf("thinp: bitmap word %d allocated outside the allocator view", w)
		}
	}
	return nil
}

// ShardCount reports the pool's runtime shard count (1 when sharding is
// effectively off).
func (p *Pool) ShardCount() int { return len(p.shards) }

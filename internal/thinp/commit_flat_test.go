package thinp

import (
	"bytes"
	"hash/crc64"
	"math/rand"
	"testing"

	"mobiceal/internal/prng"
	"mobiceal/internal/storage"
)

// TestCRCBlockFolder pins the linear-algebra shortcut the commit path uses
// to seal superblocks: folding per-block CRC64 sums must reproduce
// crc64.Checksum over the concatenated image exactly, for every block size
// the pool might run with.
func TestCRCBlockFolder(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for _, bs := range []int{64, 512, 4096} {
		f := newCRCBlockFolder(bs)
		for _, nBlocks := range []int{1, 2, 3, 17} {
			data := make([]byte, bs*nBlocks)
			rng.Read(data)
			sums := make([]uint64, nBlocks)
			for b := 0; b < nBlocks; b++ {
				sums[b] = crc64.Checksum(data[b*bs:(b+1)*bs], crcTable)
			}
			if got, want := f.fold(sums), crc64.Checksum(data, crcTable); got != want {
				t.Fatalf("bs=%d n=%d: fold = %#x, want %#x", bs, nBlocks, got, want)
			}
		}
	}
}

// burstPolicy fires a dummy write on every third provision, targeting a
// fixed thin — deterministic, so two pools driven by the same workload see
// identical dummy traffic.
type burstPolicy struct {
	n      int
	target int
}

func (b *burstPolicy) OnProvision(int) (int, int, bool) {
	b.n++
	if b.n%3 == 0 {
		return b.target, 2, true
	}
	return 0, 0, false
}

// TestFlatCommitEquivalenceRandomized is the commit-equivalence suite for
// the flat-cost commit: two identical pools run a randomized workload of
// provisioning writes, range writes, overwrites, discards, discard ranges,
// dummy bursts and thin create/delete; one commits through the in-place
// arena path, the other with full image rewrites. After every commit the
// entire metadata devices must be byte-identical — the on-disk v2 format
// must not betray which path wrote it — and the incremental pool must
// survive reopening mid-workload with its state intact.
func TestFlatCommitEquivalenceRandomized(t *testing.T) {
	const (
		dataBlocks = 4096
		dummyThin  = 99
	)
	build := func() (*Pool, *storage.MemDevice, *storage.MemDevice) {
		data := storage.NewMemDevice(blockSize, dataBlocks)
		meta := storage.NewMemDevice(blockSize, MetaBlocksNeeded(dataBlocks, blockSize))
		p, err := CreatePool(data, meta, Options{
			Entropy:  prng.NewSeededEntropy(77),
			DummySrc: prng.NewSource(78),
			Policy:   &burstPolicy{target: dummyThin},
		})
		if err != nil {
			t.Fatalf("CreatePool: %v", err)
		}
		if err := p.CreateThin(dummyThin, 1024); err != nil {
			t.Fatal(err)
		}
		return p, data, meta
	}
	inc, incData, incMeta := build()
	ref, _, refMeta := build()

	// The workload script is generated once and replayed against both
	// pools so their mutation streams are identical.
	rng := rand.New(rand.NewSource(555))
	nextThin := 1
	live := []int{}

	apply := func(p *Pool, op func(p *Pool) error) {
		t.Helper()
		if err := op(p); err != nil {
			t.Fatalf("workload op: %v", err)
		}
	}
	for round := 0; round < 12; round++ {
		// Structural changes between some rounds.
		if round%3 == 0 {
			id := nextThin
			nextThin++
			live = append(live, id)
			op := func(p *Pool) error { return p.CreateThin(id, 512) }
			apply(inc, op)
			apply(ref, op)
		}
		if round%5 == 4 && len(live) > 1 {
			id := live[0]
			live = live[1:]
			op := func(p *Pool) error { return p.DeleteThin(id) }
			apply(inc, op)
			apply(ref, op)
		}
		// Data traffic on a random live thin.
		for i := 0; i < 60; i++ {
			id := live[rng.Intn(len(live))]
			vb := uint64(rng.Intn(512))
			switch rng.Intn(5) {
			case 0, 1: // single write (provision or overwrite, may fire dummies)
				buf := make([]byte, blockSize)
				rng.Read(buf)
				op := func(p *Pool) error {
					th, err := p.Thin(id)
					if err != nil {
						return err
					}
					return th.WriteBlock(vb%th.NumBlocks(), buf)
				}
				apply(inc, op)
				apply(ref, op)
			case 2: // range write
				n := rng.Intn(6) + 1
				buf := make([]byte, n*blockSize)
				rng.Read(buf)
				op := func(p *Pool) error {
					th, err := p.Thin(id)
					if err != nil {
						return err
					}
					start := vb % (th.NumBlocks() - uint64(n))
					return th.WriteBlocks(start, buf)
				}
				apply(inc, op)
				apply(ref, op)
			case 3: // discard
				op := func(p *Pool) error {
					th, err := p.Thin(id)
					if err != nil {
						return err
					}
					return th.Discard(vb % th.NumBlocks())
				}
				apply(inc, op)
				apply(ref, op)
			case 4: // discard range
				n := uint64(rng.Intn(8) + 1)
				op := func(p *Pool) error {
					th, err := p.Thin(id)
					if err != nil {
						return err
					}
					start := vb % (th.NumBlocks() - n)
					return th.DiscardRange(start, n)
				}
				apply(inc, op)
				apply(ref, op)
			}
		}
		if err := inc.Commit(); err != nil {
			t.Fatalf("round %d: incremental commit: %v", round, err)
		}
		if err := ref.CommitFull(); err != nil {
			t.Fatalf("round %d: full commit: %v", round, err)
		}
		if !bytes.Equal(metaImage(t, incMeta), metaImage(t, refMeta)) {
			t.Fatalf("round %d: incremental and full metadata devices differ", round)
		}
		if err := inc.CheckIntegrity(); err != nil {
			t.Fatalf("round %d: integrity: %v", round, err)
		}
		// Occasionally a no-op double commit.
		if round%4 == 1 {
			if err := inc.Commit(); err != nil {
				t.Fatal(err)
			}
			if err := ref.CommitFull(); err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(metaImage(t, incMeta), metaImage(t, refMeta)) {
				t.Fatalf("round %d: no-op commit images differ", round)
			}
		}
		// Reopen the incremental pool mid-workload: the arena must prime
		// from disk and keep producing byte-identical commits. The
		// reference pool is reopened too so policy/PRNG streams stay in
		// lockstep.
		if round%4 == 3 {
			var err error
			inc, err = OpenPool(incData, incMeta, Options{
				Entropy:  prng.NewSeededEntropy(uint64(1000 + round)),
				DummySrc: prng.NewSource(uint64(2000 + round)),
				Policy:   &burstPolicy{target: dummyThin},
			})
			if err != nil {
				t.Fatalf("round %d: reopen incremental: %v", round, err)
			}
			ref, err = OpenPool(ref.DataDevice(), refMeta, Options{
				Entropy:  prng.NewSeededEntropy(uint64(1000 + round)),
				DummySrc: prng.NewSource(uint64(2000 + round)),
				Policy:   &burstPolicy{target: dummyThin},
			})
			if err != nil {
				t.Fatalf("round %d: reopen reference: %v", round, err)
			}
		}
	}

	// Final cross-check: a fresh OpenPool of the incremental device sees
	// exactly the committed state.
	re, err := OpenPool(incData, incMeta, Options{Entropy: prng.NewSeededEntropy(3)})
	if err != nil {
		t.Fatalf("final reopen: %v", err)
	}
	if err := re.CheckIntegrity(); err != nil {
		t.Fatalf("final integrity: %v", err)
	}
	if re.TransactionID() != inc.TransactionID() {
		t.Fatalf("reloaded tx %d, want %d", re.TransactionID(), inc.TransactionID())
	}
	for _, id := range inc.ThinIDs() {
		a, err := inc.MappedVBlocks(id)
		if err != nil {
			t.Fatal(err)
		}
		b, err := re.MappedVBlocks(id)
		if err != nil {
			t.Fatal(err)
		}
		if len(a) != len(b) {
			t.Fatalf("thin %d: reloaded %d mappings, want %d", id, len(b), len(a))
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("thin %d: mapping %d differs after reload", id, i)
			}
		}
	}
}

// TestFlatCommitArenaRegrowKeepsInPlaceSegments is the regression test for
// an arena-reallocation bug: when a splice grows the image past the
// arena's capacity, segments the splice loop leaves in place — unshifted
// clean segments between and after the spliced ones, and the kept
// header/prefix of an unshifted spliced segment — must be carried into
// the new allocation. The failure mode was silent: the zeroed bytes were
// not marked changed, so the devices stayed correct until a LATER commit
// shifted them, sealed the zeros with a valid checksum into both A/B
// slots, and made the pool unopenable.
func TestFlatCommitArenaRegrowKeepsInPlaceSegments(t *testing.T) {
	const dataBlocks = 4096
	data := storage.NewMemDevice(blockSize, dataBlocks)
	meta := storage.NewMemDevice(blockSize, MetaBlocksNeeded(dataBlocks, blockSize))
	p, err := CreatePool(data, meta, Options{Entropy: prng.NewSeededEntropy(13)})
	if err != nil {
		t.Fatal(err)
	}
	for id := 1; id <= 3; id++ {
		if err := p.CreateThin(id, 2048); err != nil {
			t.Fatal(err)
		}
	}
	thin := func(id int) *Thin {
		th, err := p.Thin(id)
		if err != nil {
			t.Fatal(err)
		}
		return th
	}
	one := make([]byte, blockSize)
	if err := thin(1).WriteBlocks(0, make([]byte, 8*blockSize)); err != nil {
		t.Fatal(err)
	}
	if err := thin(2).WriteBlocks(0, make([]byte, 8*blockSize)); err != nil {
		t.Fatal(err)
	}
	if err := thin(3).WriteBlocks(0, make([]byte, 8*blockSize)); err != nil {
		t.Fatal(err)
	}
	if err := p.Commit(); err != nil { // structural rebuild: arena capacity == exact size
		t.Fatal(err)
	}
	// Net-zero impure delta on thin 1 (forces the splice path with an
	// early scratch cut) plus enough growth on thin 3 to outgrow the
	// arena; thin 2 is untouched and must survive in place.
	if err := thin(1).Discard(0); err != nil {
		t.Fatal(err)
	}
	if err := thin(1).WriteBlocks(100, one); err != nil {
		t.Fatal(err)
	}
	if err := thin(3).WriteBlocks(8, make([]byte, 600*blockSize)); err != nil {
		t.Fatal(err)
	}
	if err := p.Commit(); err != nil {
		t.Fatal(err)
	}
	// A later commit that shifts thin 2 and thin 3 writes their bytes out
	// of the arena; if the regrow dropped them, this seals zeros to disk.
	if err := thin(1).WriteBlocks(200, make([]byte, 4*blockSize)); err != nil {
		t.Fatal(err)
	}
	if err := p.Commit(); err != nil {
		t.Fatal(err)
	}
	re, err := OpenPool(data, meta, Options{Entropy: prng.NewSeededEntropy(14)})
	if err != nil {
		t.Fatalf("OpenPool after arena regrowth: %v", err)
	}
	if err := re.CheckIntegrity(); err != nil {
		t.Fatal(err)
	}
	for id := 1; id <= 3; id++ {
		want, err := p.MappedBlocks(id)
		if err != nil {
			t.Fatal(err)
		}
		got, err := re.MappedBlocks(id)
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Fatalf("thin %d: reloaded %d mappings, want %d", id, got, want)
		}
	}
}

// TestFlatCommitUpdateInPlace pins the cheapest hot path: a discard
// followed by a re-provision of the same vblock commits as an in-place
// entry patch — the steady-state commit still writes only the handful of
// meta blocks the delta touches, and the image stays identical to a full
// rewrite.
func TestFlatCommitUpdateInPlace(t *testing.T) {
	const dataBlocks = 8192
	data := storage.NewMemDevice(blockSize, dataBlocks)
	metaStats := storage.NewStatsDevice(storage.NewMemDevice(blockSize, MetaBlocksNeeded(dataBlocks, blockSize)))
	p, err := CreatePool(data, metaStats, Options{Entropy: prng.NewSeededEntropy(5)})
	if err != nil {
		t.Fatal(err)
	}
	if err := p.CreateThin(1, dataBlocks); err != nil {
		t.Fatal(err)
	}
	thin, err := p.Thin(1)
	if err != nil {
		t.Fatal(err)
	}
	if err := thin.WriteBlocks(0, make([]byte, 4000*blockSize)); err != nil {
		t.Fatal(err)
	}
	if err := p.Commit(); err != nil {
		t.Fatal(err)
	}
	if err := p.Commit(); err != nil { // drain the pending delta to the other slot
		t.Fatal(err)
	}

	one := make([]byte, blockSize)
	for i := 0; i < 8; i++ {
		vb := uint64(100 + i*17)
		if err := thin.Discard(vb); err != nil {
			t.Fatal(err)
		}
		if err := thin.WriteBlocks(vb, one); err != nil {
			t.Fatal(err)
		}
		metaStats.ResetStats()
		if err := p.Commit(); err != nil {
			t.Fatal(err)
		}
		// One remapped entry + one or two bitmap words + carried delta
		// from the previous commit + superblock: a handful of writes, not
		// an image's worth.
		if w := metaStats.Stats().Writes; w > 10 {
			t.Fatalf("iteration %d: update-in-place commit wrote %d meta blocks", i, w)
		}
	}
	// The in-place image still matches a from-scratch rebuild. Two no-op
	// commits first, so each A/B slot catches up on its pending delta and
	// both hold exactly the arena's bytes.
	if err := p.Commit(); err != nil {
		t.Fatal(err)
	}
	if err := p.Commit(); err != nil {
		t.Fatal(err)
	}
	rawInc := metaImage(t, metaStats)
	if err := p.CommitFull(); err != nil {
		t.Fatal(err)
	}
	if err := p.CommitFull(); err != nil {
		t.Fatal(err)
	}
	rawFull := metaImage(t, metaStats)
	// Superblocks carry different txIDs; compare the image slots only.
	bs := blockSize
	slot := int(p.slotBlocks())
	for b := superSlots; b < superSlots+2*slot; b++ {
		if !bytes.Equal(rawInc[b*bs:(b+1)*bs], rawFull[b*bs:(b+1)*bs]) {
			// CommitFull rewrote both slots with the same image content
			// the incremental path maintained; any difference means the
			// arena diverged from the page tables.
			t.Fatalf("image slot block %d diverged between in-place and rebuilt commits", b)
		}
	}
	if err := p.CheckIntegrity(); err != nil {
		t.Fatal(err)
	}
}

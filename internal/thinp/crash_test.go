package thinp

import (
	"errors"
	"fmt"
	"testing"

	"mobiceal/internal/prng"
	"mobiceal/internal/storage"
)

// poolSnap captures the observable committed state of a pool: transaction
// id, allocation count and the exact per-thin mappings.
type poolSnap struct {
	txID  uint64
	alloc uint64
	thins map[int]map[uint64]uint64
}

func snapPool(p *Pool) poolSnap {
	p.mu.Lock()
	defer p.mu.Unlock()
	s := poolSnap{txID: p.txID, alloc: p.bm.Allocated(), thins: make(map[int]map[uint64]uint64)}
	for id, tm := range p.thins {
		m := make(map[uint64]uint64, tm.pt.count)
		tm.pt.forEach(func(vb, pb uint64) bool {
			m[vb] = pb
			return true
		})
		s.thins[id] = m
	}
	return s
}

func (s poolSnap) equal(o poolSnap) bool {
	if s.alloc != o.alloc || len(s.thins) != len(o.thins) {
		return false
	}
	for id, m := range s.thins {
		om, ok := o.thins[id]
		if !ok || len(m) != len(om) {
			return false
		}
		for vb, pb := range m {
			if om[vb] != pb {
				return false
			}
		}
	}
	return true
}

// checkCrashPoint opens the pool from one crash image and asserts it lands
// on exactly one of the committed snapshots — never an intermediate state.
func checkCrashPoint(t *testing.T, label string, data storage.Device, img storage.Device, snaps map[uint64]poolSnap) {
	t.Helper()
	re, err := OpenPool(data, img, Options{Entropy: prng.NewSeededEntropy(99)})
	if err != nil {
		t.Fatalf("%s: OpenPool: %v", label, err)
	}
	if err := re.CheckIntegrity(); err != nil {
		t.Fatalf("%s: integrity: %v", label, err)
	}
	want, ok := snaps[re.TransactionID()]
	if !ok {
		t.Fatalf("%s: recovered tx %d is not a committed transaction", label, re.TransactionID())
	}
	if !snapPool(re).equal(want) {
		t.Fatalf("%s: recovered state differs from committed tx %d", label, re.TransactionID())
	}
}

// TestCrashEnumerationPoolCommit is the crash-enumeration harness of the
// A/B commit: a workload of thin writes, discards, a structural change and
// three commits runs over a metadata device that logs every persisted
// write; the pool is then re-opened from the stable state after every
// single write index — plus torn-block variants of every write — and must
// recover to exactly one of the committed transactions each time.
func TestCrashEnumerationPoolCommit(t *testing.T) {
	const dataBlocks = 512
	data := storage.NewMemDevice(blockSize, dataBlocks)
	metaCrash := storage.NewCrashDevice(storage.NewMemDevice(blockSize, MetaBlocksNeeded(dataBlocks, blockSize)))
	p, err := CreatePool(data, metaCrash, Options{Entropy: prng.NewSeededEntropy(51)})
	if err != nil {
		t.Fatal(err)
	}
	if err := p.CreateThin(1, 256); err != nil {
		t.Fatal(err)
	}
	thin, err := p.Thin(1)
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 8*blockSize)
	if err := thin.WriteBlocks(0, buf); err != nil {
		t.Fatal(err)
	}
	if err := p.Commit(); err != nil {
		t.Fatal(err)
	}

	snaps := map[uint64]poolSnap{p.TransactionID(): snapPool(p)}
	if err := metaCrash.StartRecording(); err != nil {
		t.Fatal(err)
	}

	// Commit 2: provisioning writes, an overwrite and a discard — an
	// incremental delta.
	if err := thin.WriteBlocks(32, buf); err != nil {
		t.Fatal(err)
	}
	if err := thin.WriteBlock(0, buf[:blockSize]); err != nil {
		t.Fatal(err)
	}
	if err := thin.Discard(3); err != nil {
		t.Fatal(err)
	}
	if err := p.Commit(); err != nil {
		t.Fatal(err)
	}
	snaps[p.TransactionID()] = snapPool(p)

	// Commit 3: a structural change (new thin) plus more writes — the full
	// rebuild path.
	if err := p.CreateThin(2, 128); err != nil {
		t.Fatal(err)
	}
	thin2, err := p.Thin(2)
	if err != nil {
		t.Fatal(err)
	}
	if err := thin2.WriteBlocks(10, buf[:4*blockSize]); err != nil {
		t.Fatal(err)
	}
	if err := p.Commit(); err != nil {
		t.Fatal(err)
	}
	snaps[p.TransactionID()] = snapPool(p)

	total := metaCrash.PersistedWrites()
	if total < 4 {
		t.Fatalf("only %d persisted metadata writes recorded; harness is not exercising the stream", total)
	}
	for n := 0; n <= total; n++ {
		img, err := metaCrash.CrashImage(n)
		if err != nil {
			t.Fatal(err)
		}
		checkCrashPoint(t, fmt.Sprintf("cut@%d", n), data, img, snaps)
		if n == total {
			continue
		}
		for _, tear := range []int{1, blockSize / 2, blockSize - 1} {
			img, err := metaCrash.CrashImageTorn(n, tear)
			if err != nil {
				t.Fatal(err)
			}
			checkCrashPoint(t, fmt.Sprintf("torn@%d+%db", n, tear), data, img, snaps)
		}
	}
}

// TestOpenPoolRollsBackTornSuperblock corrupts the active slot's superblock
// the way a torn flip write would and verifies OpenPool falls back to the
// previous transaction, reporting the rollback.
func TestOpenPoolRollsBackTornSuperblock(t *testing.T) {
	const dataBlocks = 256
	data := storage.NewMemDevice(blockSize, dataBlocks)
	meta := storage.NewMemDevice(blockSize, MetaBlocksNeeded(dataBlocks, blockSize))
	p, err := CreatePool(data, meta, Options{Entropy: prng.NewSeededEntropy(61)})
	if err != nil {
		t.Fatal(err)
	}
	if err := p.CreateThin(1, 64); err != nil {
		t.Fatal(err)
	}
	thin, err := p.Thin(1)
	if err != nil {
		t.Fatal(err)
	}
	if err := thin.WriteBlocks(0, make([]byte, 4*blockSize)); err != nil {
		t.Fatal(err)
	}
	if err := p.Commit(); err != nil {
		t.Fatal(err)
	}
	prevSnap := snapPool(p)
	prevTx := p.TransactionID()
	if err := thin.WriteBlocks(8, make([]byte, 4*blockSize)); err != nil {
		t.Fatal(err)
	}
	if err := p.Commit(); err != nil {
		t.Fatal(err)
	}
	active := p.ActiveSlot()

	// Tear the freshly flipped superblock: flip a byte in its checksum.
	super := make([]byte, blockSize)
	if err := meta.ReadBlock(uint64(active), super); err != nil {
		t.Fatal(err)
	}
	super[superSelfSumOff] ^= 0xff
	if err := meta.WriteBlock(uint64(active), super); err != nil {
		t.Fatal(err)
	}

	re, err := OpenPool(data, meta, Options{Entropy: prng.NewSeededEntropy(62)})
	if err != nil {
		t.Fatalf("OpenPool with torn superblock: %v", err)
	}
	if re.TransactionID() != prevTx {
		t.Fatalf("recovered tx %d, want rollback to %d", re.TransactionID(), prevTx)
	}
	if !snapPool(re).equal(prevSnap) {
		t.Fatal("recovered state differs from the previous commit")
	}
	rec := re.Recovery()
	if !rec.RolledBack || rec.TxID != prevTx || rec.Slot == active {
		t.Fatalf("recovery = %+v, want rollback onto slot %d tx %d", rec, 1-active, prevTx)
	}
}

// TestOpenPoolRejectsDoubleCorruption verifies that with both slots
// invalidated nothing plausible is loaded — ErrCorruptMeta, not garbage.
func TestOpenPoolRejectsDoubleCorruption(t *testing.T) {
	const dataBlocks = 256
	data := storage.NewMemDevice(blockSize, dataBlocks)
	meta := storage.NewMemDevice(blockSize, MetaBlocksNeeded(dataBlocks, blockSize))
	if _, err := CreatePool(data, meta, Options{Entropy: prng.NewSeededEntropy(63)}); err != nil {
		t.Fatal(err)
	}
	bad := make([]byte, blockSize)
	for i := range bad {
		bad[i] = 0x5a
	}
	for slot := uint64(0); slot < superSlots; slot++ {
		if err := meta.WriteBlock(slot, bad); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := OpenPool(data, meta, Options{Entropy: prng.NewSeededEntropy(64)}); !errors.Is(err, ErrCorruptMeta) {
		t.Fatalf("OpenPool err = %v, want ErrCorruptMeta", err)
	}
}

// TestFreedBlockQuarantineUntilCommit pins the reuse rule the A/B rollback
// depends on: a block freed from committed state must not be reallocated
// until the commit recording the free is durable — otherwise a crash
// rollback would resurrect the old mapping pointing at another volume's
// fresh data. Blocks allocated and freed within the same transaction are
// exempt.
func TestFreedBlockQuarantineUntilCommit(t *testing.T) {
	const dataBlocks = 16
	data := storage.NewMemDevice(blockSize, dataBlocks)
	meta := storage.NewMemDevice(blockSize, MetaBlocksNeeded(dataBlocks, blockSize))
	p, err := CreatePool(data, meta, Options{Entropy: prng.NewSeededEntropy(81)})
	if err != nil {
		t.Fatal(err)
	}
	if err := p.CreateThin(1, 32); err != nil {
		t.Fatal(err)
	}
	if err := p.CreateThin(2, 32); err != nil {
		t.Fatal(err)
	}
	thin1, err := p.Thin(1)
	if err != nil {
		t.Fatal(err)
	}
	thin2, err := p.Thin(2)
	if err != nil {
		t.Fatal(err)
	}
	// Fill the pool completely and commit.
	if err := thin1.WriteBlock(0, make([]byte, blockSize)); err != nil {
		t.Fatal(err)
	}
	if err := thin2.WriteBlocks(0, make([]byte, (dataBlocks-1)*blockSize)); err != nil {
		t.Fatal(err)
	}
	if err := p.Commit(); err != nil {
		t.Fatal(err)
	}

	// Free thin1's committed block: the space must NOT be reusable yet.
	if err := thin1.Discard(0); err != nil {
		t.Fatal(err)
	}
	if err := thin2.WriteBlock(20, make([]byte, blockSize)); !errors.Is(err, ErrNoSpace) {
		t.Fatalf("write reusing uncommitted free err = %v, want ErrNoSpace", err)
	}
	// After the commit records the free, the block is reusable.
	if err := p.Commit(); err != nil {
		t.Fatal(err)
	}
	if err := thin2.WriteBlock(20, make([]byte, blockSize)); err != nil {
		t.Fatalf("write after committed free: %v", err)
	}
	if err := p.CheckIntegrity(); err != nil {
		t.Fatal(err)
	}

	// Same-transaction alloc+free is exempt: with the pool full again,
	// discarding the block just written (uncommitted) frees it for
	// immediate reuse.
	if err := thin2.Discard(20); err != nil {
		t.Fatal(err)
	}
	if err := thin2.WriteBlock(21, make([]byte, blockSize)); err != nil {
		t.Fatalf("reusing same-transaction free: %v", err)
	}
	if err := p.CheckIntegrity(); err != nil {
		t.Fatal(err)
	}
}

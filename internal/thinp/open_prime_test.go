package thinp

import (
	"bytes"
	"testing"

	"mobiceal/internal/prng"
	"mobiceal/internal/storage"
)

// TestOpenPrimesInactiveSlotPending pins the satellite fix for the one
// full-slot rewrite the first post-mount commit used to pay: OpenPool now
// primes the inactive slot's pending set from that slot's own validated
// image, so a freshly opened pool's first 1-block-delta commit writes only
// the genuine inter-slot divergence plus the delta — a handful of metadata
// blocks — instead of the whole slot.
func TestOpenPrimesInactiveSlotPending(t *testing.T) {
	p, data, meta := newTestPool(t, 4096, Options{})
	if err := p.CreateThin(1, 4096); err != nil {
		t.Fatal(err)
	}
	driveMutations(t, p, 99)
	// Two commits so both A/B slots hold validated images of adjacent
	// transactions — the steady state every reboot reopens into.
	if err := p.Commit(); err != nil {
		t.Fatal(err)
	}
	thin, err := p.Thin(1)
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, blockSize)
	if err := thin.WriteBlock(7, buf); err != nil {
		t.Fatal(err)
	}
	if err := p.Commit(); err != nil {
		t.Fatal(err)
	}

	stats := storage.NewStatsDevice(meta)
	p2, err := OpenPool(data, stats, Options{
		Entropy:  prng.NewSeededEntropy(3),
		DummySrc: prng.NewSource(4),
	})
	if err != nil {
		t.Fatalf("OpenPool: %v", err)
	}
	base := stats.Stats().Writes

	thin2, err := p2.Thin(1)
	if err != nil {
		t.Fatal(err)
	}
	if err := thin2.WriteBlock(11, buf); err != nil {
		t.Fatal(err)
	}
	if err := p2.Commit(); err != nil {
		t.Fatal(err)
	}
	wrote := stats.Stats().Writes - base

	// The first post-mount commit carries: the inter-slot divergence (the
	// previous transaction's delta — a few blocks), this commit's own
	// 1-block delta, and the superblock. Without priming it rewrote the
	// whole slot (slotBlocks, hundreds of blocks at this geometry).
	slot := p2.slotBlocks()
	if wrote > 16 || wrote > slot/4 {
		t.Fatalf("first post-mount commit wrote %d meta blocks (slot is %d); priming failed", wrote, slot)
	}
	if slot < 64 {
		t.Fatalf("test geometry too small to distinguish priming: slot %d", slot)
	}

	// The written image must still be byte-equivalent to what a full
	// rewrite produces: reopen and compare the active images.
	p3, err := OpenPool(data, meta, Options{
		Entropy:  prng.NewSeededEntropy(5),
		DummySrc: prng.NewSource(6),
	})
	if err != nil {
		t.Fatalf("reopening after primed commit: %v", err)
	}
	if err := p3.CheckIntegrity(); err != nil {
		t.Fatal(err)
	}
	if p3.TransactionID() != p2.TransactionID() {
		t.Fatalf("reopen landed on tx %d, want %d", p3.TransactionID(), p2.TransactionID())
	}
	got, err := p3.MappedVBlocks(1)
	if err != nil {
		t.Fatal(err)
	}
	want, err := p2.MappedVBlocks(1)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("mapping count diverged: %d vs %d", len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("mapping diverged at %d: %d vs %d", i, got[i], want[i])
		}
	}
	if !bytes.Equal(p2.image, p3.image) {
		t.Fatal("primed-commit image differs from reloaded image")
	}
}

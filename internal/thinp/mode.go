package thinp

import (
	"errors"
	"fmt"
	"time"
)

// PoolMode is the pool health state — the reproduction of dm-thin's pool
// mode ladder (PM_WRITE → PM_OUT_OF_DATA_SPACE → PM_READ_ONLY → PM_FAIL).
// Severity only ever increases, with one documented exception: an
// out-of-data-space pool recovers to Write when discard or GC reclaim (or
// a commit releasing quarantined frees) makes blocks allocatable again.
type PoolMode int

// Pool health modes, in increasing severity.
const (
	// PoolWrite is normal operation: all operations permitted.
	PoolWrite PoolMode = iota
	// PoolOutOfDataSpace means provisioning failed for lack of free data
	// blocks. Reads, overwrites of provisioned blocks, discards and
	// commits still work; writes needing provisioning queue for up to
	// Options.NoSpaceTimeout (dm-thin's no_space_timeout) or fail with
	// ErrNoSpace. The pool returns to Write on reclaim.
	PoolOutOfDataSpace
	// PoolReadOnly means a metadata commit could not reach the device:
	// nothing new can become durable, so every mutation fails with
	// ErrReadOnlyMode while reads keep serving the current state. The
	// failed commit's delta was merged back intact (the error-path
	// merge-back), so a reopen recovers the last durable transaction.
	PoolReadOnly
	// PoolFail means the in-memory state is no longer trustworthy (a
	// post-flip bookkeeping failure). All I/O fails; only a reopen —
	// which reloads committed state from the metadata device — helps.
	PoolFail
)

// String implements fmt.Stringer.
func (m PoolMode) String() string {
	switch m {
	case PoolWrite:
		return "write"
	case PoolOutOfDataSpace:
		return "out-of-data-space"
	case PoolReadOnly:
		return "read-only"
	case PoolFail:
		return "fail"
	default:
		return fmt.Sprintf("PoolMode(%d)", int(m))
	}
}

// Mode-ladder errors.
var (
	// ErrReadOnlyMode reports a mutation on a pool degraded to
	// PoolReadOnly by a metadata commit failure.
	ErrReadOnlyMode = errors.New("thinp: pool is read-only")
	// ErrPoolFail reports any operation on a pool in PoolFail.
	ErrPoolFail = errors.New("thinp: pool has failed")
)

// Mode returns the pool's current health mode.
func (p *Pool) Mode() PoolMode {
	p.mu.RLock()
	defer p.mu.RUnlock()
	return p.mode
}

// Status returns the pool's health mode and the reason for the last
// degradation (empty in PoolWrite).
func (p *Pool) Status() (PoolMode, string) {
	p.mu.RLock()
	defer p.mu.RUnlock()
	return p.mode, p.modeReason
}

// setModeLocked moves the ladder. Transitions only escalate — a stale
// caller cannot un-degrade the pool — except through recoverSpaceLocked,
// which owns the one legal de-escalation. Caller holds p.mu exclusively.
func (p *Pool) setModeLocked(m PoolMode, reason string) {
	if m <= p.mode {
		return
	}
	p.mode = m
	p.modeReason = reason
	// Health-ladder moves feed the telemetry event log. The entry names
	// the shared pool machinery only — reasons describe device or space
	// state, never a thin device.
	p.m.Events.Append("mode", fmt.Sprintf("%s: %s", m, reason))
}

// checkMutableLocked gates every metadata-mutating entry point (writes,
// discards, thin create/delete, commits). Caller holds p.mu (either mode).
func (p *Pool) checkMutableLocked() error {
	switch p.mode {
	case PoolFail:
		return fmt.Errorf("%w (%s)", ErrPoolFail, p.modeReason)
	case PoolReadOnly:
		return fmt.Errorf("%w (%s)", ErrReadOnlyMode, p.modeReason)
	}
	return nil
}

// checkReadableLocked gates reads: only PoolFail stops them — a read-only
// pool keeps serving data, that is its point. Caller holds p.mu.
func (p *Pool) checkReadableLocked() error {
	if p.mode == PoolFail {
		return fmt.Errorf("%w (%s)", ErrPoolFail, p.modeReason)
	}
	return nil
}

// enterNoSpaceLocked records a provisioning failure for lack of data
// space. Caller holds p.mu exclusively.
func (p *Pool) enterNoSpaceLocked() {
	p.setModeLocked(PoolOutOfDataSpace, "data space exhausted")
}

// maybeRecoverSpaceLocked returns the pool to Write when it sat in
// OutOfDataSpace and blocks became allocatable again (a discard within the
// transaction, or a commit releasing quarantined frees). Caller holds p.mu
// exclusively.
func (p *Pool) maybeRecoverSpaceLocked() {
	if p.mode == PoolOutOfDataSpace && p.allocBM.Free() > 0 {
		p.mode = PoolWrite
		p.modeReason = ""
		p.errorIfNoSpace = false
		if p.spaceCh != nil {
			close(p.spaceCh)
			p.spaceCh = nil
		}
		p.m.Events.Append("recovery", "out-of-data-space: blocks reclaimed, pool back to write")
	}
}

// noteNoSpace records a provisioning failure for lack of data space from a
// fine-grained (read-locked) writer, which cannot mutate the mode ladder in
// place. Called with no pool lock held; it takes p.mu exclusively, enters
// OutOfDataSpace, and immediately runs the recovery check — the failed
// request's own unwind may already have freed blocks, and skipping the
// check would leave the pool parked until the next discard.
func (p *Pool) noteNoSpace() {
	p.mu.Lock()
	p.enterNoSpaceLocked()
	p.maybeRecoverSpaceLocked()
	p.mu.Unlock()
}

// maybeRecoverSpace is the lock-acquiring wrapper fine-grained paths use to
// poke space recovery after releasing blocks under the shared lock. Called
// with no pool lock held.
func (p *Pool) maybeRecoverSpace() {
	p.mu.Lock()
	p.maybeRecoverSpaceLocked()
	p.mu.Unlock()
}

// waitForSpace blocks a writer that hit ErrNoSpace until reclaim makes
// space available or Options.NoSpaceTimeout expires, reporting whether the
// caller should retry provisioning. With no timeout configured (the
// default, dm-thin's error_if_no_space), or once a previous waiter already
// timed out, it fails fast and the ErrNoSpace surfaces unchanged. Called
// without the pool lock; callers MUST bound their retry rounds — a
// provisioning failure's own unwind can recover the pool, so an unbounded
// retry-on-true loop would spin re-consuming its own freed blocks.
func (p *Pool) waitForSpace() bool {
	p.mu.Lock()
	if p.opts.NoSpaceTimeout <= 0 || p.errorIfNoSpace ||
		p.mode == PoolReadOnly || p.mode == PoolFail {
		p.mu.Unlock()
		return false
	}
	if p.mode != PoolOutOfDataSpace {
		// The pool already recovered between the failed provision and now
		// (a racing reclaim, or this request's own unwind): retry
		// immediately rather than parking on a channel no reclaim will
		// close.
		p.mu.Unlock()
		return true
	}
	if p.spaceCh == nil {
		p.spaceCh = make(chan struct{})
	}
	ch := p.spaceCh
	p.mu.Unlock()

	t := time.NewTimer(p.opts.NoSpaceTimeout)
	defer t.Stop()
	select {
	case <-ch:
		return true
	case <-t.C:
		p.mu.Lock()
		defer p.mu.Unlock()
		select {
		case <-ch:
			// Reclaim raced the timer; take the win.
			return true
		default:
		}
		// The timeout converts the pool to fail-fast: queued and future
		// writers error immediately until reclaim, dm-thin's behaviour
		// when no_space_timeout expires.
		if p.mode == PoolOutOfDataSpace {
			p.errorIfNoSpace = true
		}
		return false
	}
}

package thinp

import (
	"bytes"
	"math/rand"
	"sync"
	"testing"

	"mobiceal/internal/prng"
	"mobiceal/internal/storage"
)

// everyNthPolicy fires a dummy burst of count blocks into target on every
// n-th provision, regardless of which thin provisioned. Deterministic in
// the provision sequence, so two pools driven by the same serial workload
// fire identical bursts at identical points. The mutex makes the counter
// safe under concurrent provisioning tests (the production policies are
// already concurrency-safe; this helper must match).
type everyNthPolicy struct {
	every, target, count int
	mu                   sync.Mutex
	seen                 int
}

func (p *everyNthPolicy) OnProvision(int) (int, int, bool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.seen++
	if p.seen%p.every != 0 {
		return 0, 0, false
	}
	return p.target, p.count, true
}

// deviceImage reads the device's full content as one byte slice.
func deviceImage(t *testing.T, dev *storage.MemDevice) []byte {
	t.Helper()
	buf := make([]byte, int(dev.NumBlocks())*dev.BlockSize())
	if err := dev.ReadBlocks(0, buf); err != nil {
		t.Fatalf("reading device image: %v", err)
	}
	return buf
}

// TestShardedUnshardedEquivalence is the commit-equivalence suite the shard
// design promises (shard.go): a sharded and an unsharded random-allocator
// pool driven by the same seeds and the same serial workload — writes,
// overwrites, discards, dummy bursts, interleaved commits — must place every
// block identically and write byte-identical data AND metadata images at
// every commit point. This pins both halves of the runtime-only claim: the
// globally-uniform rank decomposition picks exactly the block the unsharded
// bm.NthFree would, and the two-level commit door folds per-shard deltas
// into the same on-disk v2 image one logical bitmap always had.
func TestShardedUnshardedEquivalence(t *testing.T) {
	const (
		dataBlocks = 4096
		virt       = 1024
		ops        = 800
	)

	type rig struct {
		pool       *Pool
		data, meta *storage.MemDevice
		thins      map[int]*Thin
	}
	build := func(shards int) rig {
		t.Helper()
		data := storage.NewMemDevice(blockSize, dataBlocks)
		meta := storage.NewMemDevice(blockSize, MetaBlocksNeeded(dataBlocks, blockSize))
		p, err := CreatePool(data, meta, Options{
			Allocator: NewRandomAllocator(prng.NewSource(7)),
			Entropy:   prng.NewSeededEntropy(3),
			DummySrc:  prng.NewSource(5),
			Policy:    &everyNthPolicy{every: 5, target: 2, count: 2},
			Shards:    shards,
		})
		if err != nil {
			t.Fatalf("CreatePool(shards=%d): %v", shards, err)
		}
		r := rig{pool: p, data: data, meta: meta, thins: map[int]*Thin{}}
		for _, id := range []int{1, 2} {
			if err := p.CreateThin(id, virt); err != nil {
				t.Fatalf("CreateThin(%d): %v", id, err)
			}
			th, err := p.Thin(id)
			if err != nil {
				t.Fatal(err)
			}
			r.thins[id] = th
		}
		return r
	}

	unsharded := build(1)
	sharded := build(0) // auto-shards: 4096 blocks = 64 words -> 8 shards
	if n := sharded.pool.ShardCount(); n < 2 {
		t.Fatalf("auto shard count = %d, want > 1 (test would compare a pool with itself)", n)
	}
	if n := unsharded.pool.ShardCount(); n != 1 {
		t.Fatalf("explicit Shards: 1 gave %d shards", n)
	}

	// One deterministic op script, applied to both rigs in lockstep.
	type op struct {
		kind  int // 0 = write, 1 = discard, 2 = commit, 3 = replace
		thin  int
		vb    uint64
		count uint64
	}
	rng := rand.New(rand.NewSource(42))
	script := make([]op, 0, ops)
	for i := 0; i < ops; i++ {
		switch k := rng.Intn(20); {
		case k < 11:
			script = append(script, op{kind: 0, thin: 1 + k%2, vb: uint64(rng.Intn(virt))})
		case k < 14:
			script = append(script, op{kind: 3, thin: 1 + k%2, vb: uint64(rng.Intn(virt))})
		case k < 18:
			script = append(script, op{kind: 1, thin: 1 + k%2,
				vb: uint64(rng.Intn(virt)), count: uint64(1 + rng.Intn(8))})
		default:
			script = append(script, op{kind: 2})
		}
	}
	script = append(script, op{kind: 2})

	buf := make([]byte, blockSize)
	for i, o := range script {
		for _, r := range []rig{unsharded, sharded} {
			switch o.kind {
			case 0:
				buf[0], buf[1] = byte(i), byte(o.thin)
				if err := r.thins[o.thin].WriteBlock(o.vb, buf); err != nil {
					t.Fatalf("op %d: write thin %d vb %d: %v", i, o.thin, o.vb, err)
				}
			case 1:
				count := o.count
				if o.vb+count > virt {
					count = virt - o.vb
				}
				if err := r.thins[o.thin].DiscardRange(o.vb, count); err != nil {
					t.Fatalf("op %d: discard thin %d [%d,%d): %v", i, o.thin, o.vb, o.vb+count, err)
				}
			case 3:
				buf[0], buf[1] = byte(i), byte(o.thin)
				if err := r.thins[o.thin].ReplaceBlock(o.vb, buf); err != nil {
					t.Fatalf("op %d: replace thin %d vb %d: %v", i, o.thin, o.vb, err)
				}
			case 2:
				if err := r.pool.Commit(); err != nil {
					t.Fatalf("op %d: commit: %v", i, err)
				}
			}
		}
		if o.kind != 2 {
			continue
		}
		// Every commit point must leave the two pools indistinguishable on
		// disk and in their logical accounting.
		if a, b := unsharded.pool.AllocatedBlocks(), sharded.pool.AllocatedBlocks(); a != b {
			t.Fatalf("op %d: allocated blocks diverge: unsharded %d, sharded %d", i, a, b)
		}
		if a, b := unsharded.pool.DummyBlocksWritten(), sharded.pool.DummyBlocksWritten(); a != b {
			t.Fatalf("op %d: dummy blocks diverge: unsharded %d, sharded %d", i, a, b)
		}
		if !bytes.Equal(deviceImage(t, unsharded.data), deviceImage(t, sharded.data)) {
			t.Fatalf("op %d: data device images diverge", i)
		}
		if !bytes.Equal(deviceImage(t, unsharded.meta), deviceImage(t, sharded.meta)) {
			t.Fatalf("op %d: meta device images diverge", i)
		}
	}
	if unsharded.pool.DummyBlocksWritten() == 0 {
		t.Fatal("workload fired no dummy bursts; equivalence never exercised the dummy picker")
	}
	for _, r := range []rig{unsharded, sharded} {
		if err := r.pool.CheckIntegrity(); err != nil {
			t.Fatalf("integrity: %v", err)
		}
		if err := r.pool.CheckConsistency(); err != nil {
			t.Fatalf("shard consistency: %v", err)
		}
	}
}

// TestShardedPickerUniformity is the distribution half of the deniability
// claim: under CONCURRENT writers — where the serial bit-equivalence test
// above cannot reach — the sharded picker's placements must still be
// uniform over the pool's free space, never uniform-per-shard. Eight
// writers provision public blocks while the policy fires one dummy block
// into a shared target thin per provision; afterwards both the full
// allocation set and the dummy subset alone are chi-squared against the
// uniform expectation across shards. The thresholds are generous (p ~ 1e-6
// at the respective degrees of freedom); a per-shard-uniform or
// home-shard-biased picker overshoots them by an order of magnitude.
func TestShardedPickerUniformity(t *testing.T) {
	const (
		dataBlocks = 8192 // 128 words -> 16 auto shards of 512 blocks
		writers    = 8
		perWriter  = 128
		dummyThin  = 9
	)

	data := storage.NewMemDevice(blockSize, dataBlocks)
	meta := storage.NewMemDevice(blockSize, MetaBlocksNeeded(dataBlocks, blockSize))
	p, err := CreatePool(data, meta, Options{
		Allocator: NewRandomAllocator(prng.NewSource(101)),
		Entropy:   prng.NewSeededEntropy(102),
		DummySrc:  prng.NewSource(103),
		Policy:    &everyNthPolicy{every: 1, target: dummyThin, count: 1},
	})
	if err != nil {
		t.Fatalf("CreatePool: %v", err)
	}
	nShards := p.ShardCount()
	if nShards < 8 {
		t.Fatalf("shard count = %d, want >= 8 for a meaningful distribution test", nShards)
	}
	for w := 1; w <= writers; w++ {
		if err := p.CreateThin(w, perWriter*2); err != nil {
			t.Fatalf("CreateThin(%d): %v", w, err)
		}
	}
	if err := p.CreateThin(dummyThin, dataBlocks/2); err != nil {
		t.Fatalf("CreateThin(dummy): %v", err)
	}

	var wg sync.WaitGroup
	errs := make(chan error, writers+1)
	for w := 1; w <= writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			th, err := p.Thin(w)
			if err != nil {
				errs <- err
				return
			}
			buf := make([]byte, blockSize)
			for i := 0; i < perWriter; i++ {
				buf[0] = byte(i)
				if err := th.WriteBlock(uint64(i), buf); err != nil {
					errs <- err
					return
				}
			}
		}(w)
	}
	// A committer drains per-shard deltas through the two-level door while
	// the writers run, so the counted distribution survives commits too.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 4; i++ {
			if err := p.Commit(); err != nil {
				errs <- err
				return
			}
		}
	}()
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatalf("concurrent workload: %v", err)
	}
	if err := p.Commit(); err != nil {
		t.Fatalf("final commit: %v", err)
	}

	chi2 := func(obs []uint64, total uint64, caps []uint64, space uint64) float64 {
		var x float64
		for i, o := range obs {
			e := float64(total) * float64(caps[i]) / float64(space)
			d := float64(o) - e
			x += d * d / e
		}
		return x
	}

	// Bin 1: every allocation (public + dummy), via per-shard gauges.
	caps := make([]uint64, nShards)
	allocs := make([]uint64, nShards)
	var total uint64
	p.mu.RLock()
	for i, s := range p.shards {
		caps[i] = s.hi - s.lo
		allocs[i] = caps[i] - uint64(s.free.Load())
		total += allocs[i]
	}
	p.mu.RUnlock()
	if want := uint64(writers*perWriter) + p.DummyBlocksWritten(); total != want {
		t.Fatalf("allocated %d blocks, want %d (%d public + %d dummy)",
			total, want, writers*perWriter, p.DummyBlocksWritten())
	}
	if x := chi2(allocs, total, caps, dataBlocks); x > 64 {
		t.Fatalf("allocation distribution chi-squared = %.1f over %d shards (want < 64); bins: %v",
			x, nShards, allocs)
	}

	// Bin 2: the dummy subset alone — walk the dummy thin's mappings and bin
	// its physical placements by shard. This is the picker an adversary
	// would fingerprint: dummy blocks clustering in any shard would tie
	// physical layout to write origin.
	dummyBins := make([]uint64, nShards)
	var dummyTotal uint64
	p.mu.RLock()
	p.thins[dummyThin].pt.forEach(func(vb, pb uint64) bool {
		dummyBins[p.shardIndexOf(pb)]++
		dummyTotal++
		return true
	})
	p.mu.RUnlock()
	if dummyTotal < writers*perWriter/2 {
		t.Fatalf("only %d dummy blocks placed; too few for a distribution test", dummyTotal)
	}
	if x := chi2(dummyBins, dummyTotal, caps, dataBlocks); x > 64 {
		t.Fatalf("dummy placement chi-squared = %.1f over %d shards (want < 64); bins: %v",
			x, nShards, dummyBins)
	}

	if err := p.CheckConsistency(); err != nil {
		t.Fatalf("shard consistency after concurrent workload: %v", err)
	}
}

// shardView is the adversary-visible slice of one shard's telemetry:
// gauge value, steal count and lock-acquire sample count, with wall-clock
// durations stripped exactly as publicPoolView strips them.
type shardView struct {
	free   int64
	steals uint64
	lockN  uint64
}

func shardViews(p *Pool) []shardView {
	snap := p.MetricsSnapshot()
	out := make([]shardView, len(snap.Shards))
	for i, s := range snap.Shards {
		out[i] = shardView{free: s.Free, steals: s.Steals, lockN: s.LockLat.Count}
	}
	return out
}

// TestShardedTwinPoolDeniability extends the twin-pool telemetry claim to
// the per-shard gauge surface PR 8 adds: on a SHARDED pool, a run whose
// extra traffic is hidden-volume writes and a run whose extra traffic is an
// equal-sized dummy burst into the same thin must present identical
// per-shard free gauges, steal counts and lock-acquire sample counts —
// on top of the byte-identical pool/device telemetry the unsharded twin
// test already pins. Both traffic kinds flow through the same allocate()
// choke point with the same thin affinity, so every shard's counters move
// identically by construction; a counter bumped on only one of the two
// paths would split the twins here.
func TestShardedTwinPoolDeniability(t *testing.T) {
	const (
		dataBlocks = 512
		shards     = 8
		pubBlocks  = 16
		hidBlocks  = 8
	)

	type twin struct {
		pool       *Pool
		data, meta *storage.StatsDevice
	}
	build := func(policy DummyPolicy, seed uint64) twin {
		t.Helper()
		data := storage.NewStatsDevice(storage.NewMemDevice(blockSize, dataBlocks))
		meta := storage.NewStatsDevice(storage.NewMemDevice(blockSize,
			MetaBlocksNeeded(dataBlocks, blockSize)))
		p, err := CreatePool(data, meta, Options{
			Policy:   policy,
			Entropy:  prng.NewSeededEntropy(seed),
			DummySrc: prng.NewSource(seed + 1),
			Shards:   shards,
		})
		if err != nil {
			t.Fatalf("CreatePool: %v", err)
		}
		if n := p.ShardCount(); n != shards {
			t.Fatalf("shard count = %d, want %d", n, shards)
		}
		for id, virt := range map[int]uint64{1: 64, 2: 128} {
			if err := p.CreateThin(id, virt); err != nil {
				t.Fatalf("CreateThin(%d): %v", id, err)
			}
		}
		return twin{pool: p, data: data, meta: meta}
	}
	writeBlocks := func(tw twin, thinID int, n int) {
		t.Helper()
		thin, err := tw.pool.Thin(thinID)
		if err != nil {
			t.Fatal(err)
		}
		buf := make([]byte, blockSize)
		for i := 0; i < n; i++ {
			buf[0] = byte(i)
			if err := thin.WriteBlock(uint64(i), buf); err != nil {
				t.Fatalf("thin %d write %d: %v", thinID, i, err)
			}
		}
	}

	// Different entropy seeds on purpose, as in the unsharded twin test: the
	// per-shard equality must come from where the counters sit and from the
	// shared thin-affinity homing, not from bitwise replay.
	d := build(quietPolicy{}, 31)
	c := build(&onceBurstPolicy{watch: 1, target: 2, count: hidBlocks}, 42)

	writeBlocks(d, 1, pubBlocks/2)
	writeBlocks(d, 2, hidBlocks) // hidden writes, homed on thin 2's shard
	writeBlocks(d, 1, pubBlocks)
	writeBlocks(c, 1, pubBlocks/2) // burst fires here, homed on thin 2's shard
	writeBlocks(c, 1, pubBlocks)

	for _, tw := range []twin{d, c} {
		if err := tw.pool.Commit(); err != nil {
			t.Fatalf("Commit: %v", err)
		}
	}

	vd, vc := publicView(t, d.pool, d.data, d.meta), publicView(t, c.pool, c.data, c.meta)
	if vd != vc {
		t.Fatalf("public telemetry diverges on sharded twins:\n D: %+v\n C: %+v", vd, vc)
	}
	sd, sc := shardViews(d.pool), shardViews(c.pool)
	if len(sd) != shards || len(sc) != shards {
		t.Fatalf("shard view lengths: D %d, C %d, want %d", len(sd), len(sc), shards)
	}
	for i := range sd {
		if sd[i] != sc[i] {
			t.Fatalf("shard %d telemetry diverges between hidden and dummy runs:\n D: %+v\n C: %+v",
				i, sd[i], sc[i])
		}
	}
	if d.pool.DummyBlocksWritten() != 0 {
		t.Fatalf("pool D wrote %d dummy blocks, want 0", d.pool.DummyBlocksWritten())
	}
	if c.pool.DummyBlocksWritten() != uint64(hidBlocks) {
		t.Fatalf("pool C dummy blocks = %d, want %d", c.pool.DummyBlocksWritten(), hidBlocks)
	}
}

// TestCheckConsistencySharded drives a mixed concurrent workload — writes,
// discards, commits — against an auto-sharded random pool and requires the
// shard-level invariants to hold at a mid-flight transaction boundary, after
// the final commit, and on a reopened pool.
func TestCheckConsistencySharded(t *testing.T) {
	const (
		dataBlocks = 4096
		workers    = 4
		rounds     = 3
	)
	data := storage.NewMemDevice(blockSize, dataBlocks)
	meta := storage.NewMemDevice(blockSize, MetaBlocksNeeded(dataBlocks, blockSize))
	p, err := CreatePool(data, meta, Options{
		Allocator: NewRandomAllocator(prng.NewSource(201)),
		Entropy:   prng.NewSeededEntropy(202),
	})
	if err != nil {
		t.Fatalf("CreatePool: %v", err)
	}
	for w := 1; w <= workers; w++ {
		if err := p.CreateThin(w, 256); err != nil {
			t.Fatalf("CreateThin(%d): %v", w, err)
		}
	}

	for round := 0; round < rounds; round++ {
		var wg sync.WaitGroup
		errs := make(chan error, workers)
		for w := 1; w <= workers; w++ {
			wg.Add(1)
			go func(w, round int) {
				defer wg.Done()
				th, err := p.Thin(w)
				if err != nil {
					errs <- err
					return
				}
				rng := rand.New(rand.NewSource(int64(round*workers + w)))
				buf := make([]byte, blockSize)
				for i := 0; i < 128; i++ {
					vb := uint64(rng.Intn(256))
					if rng.Intn(4) == 0 {
						err = th.Discard(vb)
					} else {
						buf[0] = byte(i)
						err = th.WriteBlock(vb, buf)
					}
					if err != nil {
						errs <- err
						return
					}
				}
			}(w, round)
		}
		wg.Wait()
		close(errs)
		for err := range errs {
			t.Fatalf("round %d: %v", round, err)
		}
		// Mid-flight: uncommitted txAlloc/txFree deltas sit in the shards.
		if err := p.CheckConsistency(); err != nil {
			t.Fatalf("round %d: consistency with open transaction: %v", round, err)
		}
		if err := p.Commit(); err != nil {
			t.Fatalf("round %d: commit: %v", round, err)
		}
		if err := p.CheckConsistency(); err != nil {
			t.Fatalf("round %d: consistency after commit: %v", round, err)
		}
	}
	if err := p.CheckIntegrity(); err != nil {
		t.Fatalf("integrity: %v", err)
	}

	reopened, err := OpenPool(data, meta, Options{
		Allocator: NewRandomAllocator(prng.NewSource(203)),
	})
	if err != nil {
		t.Fatalf("OpenPool: %v", err)
	}
	if err := reopened.CheckConsistency(); err != nil {
		t.Fatalf("reopened pool consistency: %v", err)
	}
}

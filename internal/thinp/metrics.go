package thinp

import "mobiceal/internal/obs"

// PoolMetrics is the pool's obs-backed accounting. Every public-facing
// number here is recorded at a choke point that real provisioning and the
// dummy-write mechanism traverse identically — allocate and release — or
// describes machinery shared by every volume (commit rounds, noise-stage
// stock, health events). Nothing is counted per thin device, so the
// surface cannot attribute traffic to the public or hidden half of a
// system; the per-kind split (DummyBlocksWritten) stays an internal
// experiments-only accessor and is deliberately absent from Snapshot (see
// DESIGN.md "Observability"). The per-shard gauges follow the same rule:
// shards partition physical space, not volumes, so per-shard free counts
// and steal counters reveal layout churn only — which the random allocator
// already makes volume-independent.
type PoolMetrics struct {
	// Provisions counts physical blocks handed out by the allocator; real
	// provisioning and dummy-write allocations both pass through
	// allocateLocked, so their counts are indistinguishable by
	// construction. Releases counts blocks freed back (discards, unwinds).
	Provisions obs.Counter
	Releases   obs.Counter
	// AllocLat is the latency of one allocateLocked call (free-block pick
	// plus bitmap bookkeeping), observed at the same choke point.
	AllocLat obs.Histogram

	// CommitCalls counts Commit/CommitFull calls served, CommitFlips the
	// successful A/B superblock flips they cost; calls/flips is the group
	// commit's folding factor (the CommitStats view reports the same pair).
	CommitCalls obs.Counter
	CommitFlips obs.Counter
	// CommitFoldLat is commit phase 1 (delta fold into the image arena
	// under the mapping lock), CommitWriteLat phase 2 (inactive-slot device
	// I/O, retries included), CommitTotalLat the whole round.
	CommitFoldLat  obs.Histogram
	CommitWriteLat obs.Histogram
	CommitTotalLat obs.Histogram

	// NoiseStaged is the current stock of pre-generated dummy-noise
	// payloads (0..noiseStageTarget).
	NoiseStaged obs.Gauge

	// Events records pool-global state transitions: health-ladder moves,
	// out-of-data-space recovery, format/open. Entries describe the shared
	// machinery only and never name a thin device.
	Events obs.EventLog
}

// ShardSnapshot is the point-in-time view of one allocation shard:
// current free blocks, cumulative steals (allocations served for an
// affinity homed elsewhere), and the shard-lock acquire-latency
// distribution — the contention triage signal.
type ShardSnapshot struct {
	Free    int64            `json:"free"`
	Steals  uint64           `json:"steals"`
	LockLat obs.HistSnapshot `json:"lock_lat"`
}

// PoolSnapshot is a point-in-time copy of PoolMetrics, the form that
// travels in telemetry snapshots.
type PoolSnapshot struct {
	Provisions uint64           `json:"provisions"`
	Releases   uint64           `json:"releases"`
	AllocLat   obs.HistSnapshot `json:"alloc_lat"`

	CommitCalls    uint64           `json:"commit_calls"`
	CommitFlips    uint64           `json:"commit_flips"`
	CommitFoldLat  obs.HistSnapshot `json:"commit_fold_lat"`
	CommitWriteLat obs.HistSnapshot `json:"commit_write_lat"`
	CommitTotalLat obs.HistSnapshot `json:"commit_total_lat"`

	NoiseStaged int64 `json:"noise_staged"`

	// Shards reports the per-allocation-shard gauges in shard order.
	Shards []ShardSnapshot `json:"shards,omitempty"`

	Events []obs.Event `json:"events"`
}

// FoldRatio is calls per flip — how many Commit calls one superblock flip
// covered on average (1.0 for serial committers, higher under group
// commit). 0 with no flips yet.
func (s PoolSnapshot) FoldRatio() float64 {
	if s.CommitFlips == 0 {
		return 0
	}
	return float64(s.CommitCalls) / float64(s.CommitFlips)
}

// Metrics exposes the pool's live counters.
func (p *Pool) Metrics() *PoolMetrics { return &p.m }

// MetricsSnapshot captures the pool's current metric values. CommitFlips
// is loaded before CommitCalls so the snapshot preserves calls >= flips
// even against racing commits.
func (p *Pool) MetricsSnapshot() PoolSnapshot {
	m := &p.m
	flips := m.CommitFlips.Load()
	// The shard slice is immutable after pool construction; the gauges
	// inside are atomics, so no pool lock is needed here.
	shards := make([]ShardSnapshot, len(p.shards))
	for i, s := range p.shards {
		shards[i] = ShardSnapshot{
			Free:    s.free.Load(),
			Steals:  s.steals.Load(),
			LockLat: s.lockLat.Snapshot(),
		}
	}
	return PoolSnapshot{
		Provisions:     m.Provisions.Load(),
		Releases:       m.Releases.Load(),
		AllocLat:       m.AllocLat.Snapshot(),
		CommitCalls:    m.CommitCalls.Load(),
		CommitFlips:    flips,
		CommitFoldLat:  m.CommitFoldLat.Snapshot(),
		CommitWriteLat: m.CommitWriteLat.Snapshot(),
		CommitTotalLat: m.CommitTotalLat.Snapshot(),
		NoiseStaged:    m.NoiseStaged.Load(),
		Shards:         shards,
		Events:         m.Events.Snapshot(),
	}
}

package thinp

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"

	"mobiceal/internal/prng"
	"mobiceal/internal/storage"
)

// blockReplacer matches the reallocate-on-write entry point. The benchmark
// file also drops unchanged into the pre-PR tree (for the A/B baseline in
// BENCH_PR8.json), where the same logical rewrite is the two-call
// discard + write sequence — the assertion picks whichever the tree has.
type blockReplacer interface {
	ReplaceBlock(idx uint64, src []byte) error
}

// reallocWrite re-provisions vb with fresh payload: one ReplaceBlock where
// available, discard + write otherwise.
func reallocWrite(thin *Thin, vb uint64, buf []byte) error {
	if r, ok := any(thin).(blockReplacer); ok {
		return r.ReplaceBlock(vb, buf)
	}
	if err := thin.Discard(vb); err != nil {
		return err
	}
	return thin.WriteBlock(vb, buf)
}

// BenchmarkShardedWriters is the PR 8 scaling sweep: N goroutines in a
// commit-per-write loop where every op re-provisions its vblock (a
// reallocate-on-write against the RANDOM allocator — the MobiCeal
// production picker whose provisioning previously serialized every writer
// on the pool's exclusive mapping lock) and every write commits. Each
// thin's virtual space is fully provisioned before the timer starts, so
// the timed region measures the steady state — every op allocates a fresh
// block and frees one — rather than first-touch growth of the metadata
// image. The sweep crosses writer counts with GOMAXPROCS 1 and 4: at one
// proc the sharded locks can only add overhead (the regression guard), at
// four they are the whole point. The benchmark deliberately uses only the
// long-stable pool API (CreatePool/CreateThin/WriteBlock/Commit/
// CommitStats) plus the duck-typed reallocWrite above, so the same file
// drops into the pre-PR tree for the A/B pair committed in BENCH_PR8.json
// (cmd/experiments/bench_pr8.sh automates that).
func BenchmarkShardedWriters(b *testing.B) {
	const (
		virt       = 1024
		dataBlocks = 128 * 1024
	)
	for _, procs := range []int{1, 4} {
		for _, writers := range []int{1, 4, 16, 64} {
			name := fmt.Sprintf("procs=%d/writers=%d", procs, writers)
			b.Run(name, func(b *testing.B) {
				defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(procs))
				data := storage.NewMemDevice(blockSize, dataBlocks)
				meta := storage.NewMemDevice(blockSize, MetaBlocksNeeded(dataBlocks, blockSize))
				p, err := CreatePool(data, meta, Options{
					Allocator: NewRandomAllocator(prng.NewSource(1)),
					Entropy:   prng.NewSeededEntropy(2),
					DummySrc:  prng.NewSource(3),
				})
				if err != nil {
					b.Fatal(err)
				}
				init := make([]byte, virt*blockSize)
				for id := 1; id <= writers; id++ {
					if err := p.CreateThin(id, virt); err != nil {
						b.Fatal(err)
					}
					thin, err := p.Thin(id)
					if err != nil {
						b.Fatal(err)
					}
					if err := thin.WriteBlocks(0, init); err != nil {
						b.Fatal(err)
					}
				}
				if err := p.Commit(); err != nil {
					b.Fatal(err)
				}
				startCalls, startFlips := p.CommitStats()

				b.SetBytes(blockSize)
				b.ResetTimer()
				var next atomic.Int64
				var wg sync.WaitGroup
				for w := 0; w < writers; w++ {
					wg.Add(1)
					go func(w int) {
						defer wg.Done()
						thin, err := p.Thin(w + 1)
						if err != nil {
							b.Error(err)
							return
						}
						buf := make([]byte, blockSize)
						var i uint64
						for next.Add(1) <= int64(b.N) {
							vb := i % virt
							i++
							if err := reallocWrite(thin, vb, buf); err != nil {
								b.Error(err)
								return
							}
							if err := p.Commit(); err != nil {
								b.Error(err)
								return
							}
						}
					}(w)
				}
				wg.Wait()
				b.StopTimer()
				calls, flips := p.CommitStats()
				calls -= startCalls
				flips -= startFlips
				if flips > 0 {
					b.ReportMetric(float64(calls)/float64(flips), "commits/flip")
				}
			})
		}
	}
}

package obs

import (
	"bytes"
	"strings"
	"sync"
	"testing"
)

func TestFlightRecorderNilAndDisabled(t *testing.T) {
	var nilR *FlightRecorder
	if nilR.Enabled() {
		t.Fatal("nil recorder reports enabled")
	}
	nilR.SetEnabled(true) // must not panic
	nilR.Record(1, StageQueued, FOpWrite, 1, ClassNone, 0)
	nilR.Reset()
	if got := nilR.Events(); got != nil {
		t.Fatalf("nil recorder events = %v, want nil", got)
	}
	if id := nilR.NextID(); id != 0 {
		t.Fatalf("nil NextID = %d, want 0", id)
	}

	r := NewFlightRecorder(64)
	r.Record(1, StageQueued, FOpWrite, 1, ClassNone, 0) // disabled: dropped
	if got := len(r.Events()); got != 0 {
		t.Fatalf("disabled recorder kept %d events", got)
	}
}

func TestFlightRecorderRecordAndOrder(t *testing.T) {
	r := NewFlightRecorder(1024)
	r.SetEnabled(true)
	fid := r.NextID()
	r.Record(fid, StageQueued, FOpWrite, 8, ClassNone, 0)
	r.Record(fid, StageStaged, FOpWrite, 8, ClassNone, 0)
	r.Record(fid, StageDispatch, FOpWrite, 8, ClassNone, 1)
	r.Record(fid, StageComplete, FOpWrite, 8, ClassTransient, 1)
	r.Record(fid, StageDispatch, FOpWrite, 8, ClassNone, 2)
	r.Record(fid, StageComplete, FOpWrite, 8, ClassNone, 0)

	evs := r.Events()
	if len(evs) != 6 {
		t.Fatalf("events = %d, want 6", len(evs))
	}
	wantStages := []Stage{StageQueued, StageStaged, StageDispatch,
		StageComplete, StageDispatch, StageComplete}
	for i, ev := range evs {
		if ev.ReqID != fid {
			t.Fatalf("evs[%d].ReqID = %d, want %d", i, ev.ReqID, fid)
		}
		if ev.Stage != wantStages[i] {
			t.Fatalf("evs[%d].Stage = %v, want %v", i, ev.Stage, wantStages[i])
		}
		if i > 0 && ev.At < evs[i-1].At {
			t.Fatalf("events not time-ordered at %d", i)
		}
	}
	if evs[3].Err != ClassTransient || evs[3].Aux != 1 {
		t.Fatalf("retry C = %+v, want transient class, attempt 1", evs[3])
	}

	r.Reset()
	if got := len(r.Events()); got != 0 {
		t.Fatalf("after reset: %d events", got)
	}
	if !r.Enabled() {
		t.Fatal("reset must not disable recording")
	}
}

func TestFlightRecorderWrap(t *testing.T) {
	r := NewFlightRecorder(flightShards * 4) // 4 slots per shard
	r.SetEnabled(true)
	const n = 1000
	for i := 0; i < n; i++ {
		r.Record(r.NextID(), StageQueued, FOpRead, 1, ClassNone, 0)
	}
	evs := r.Events()
	if len(evs) == 0 || len(evs) > r.Capacity() {
		t.Fatalf("retained %d events, capacity %d", len(evs), r.Capacity())
	}
}

// TestFlightRecorderConcurrent hammers Record from many goroutines while a
// reader snapshots continuously; the seqlock publication plus all-atomic
// slots must never yield a torn event. Runs in the -race CI matrix.
func TestFlightRecorderConcurrent(t *testing.T) {
	r := NewFlightRecorder(512)
	r.SetEnabled(true)
	const workers = 8
	const perWorker = 5000
	var wg sync.WaitGroup
	done := make(chan struct{})
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				fid := r.NextID()
				r.Record(fid, StageQueued, FOpWrite, 4, ClassNone, 0)
				r.Record(fid, StageComplete, FOpWrite, 4, ClassNone, 0)
			}
		}()
	}
	go func() { wg.Wait(); close(done) }()
	for {
		for _, ev := range r.Events() {
			// A torn slot would show an impossible combination; every
			// field must be one we actually wrote.
			if ev.Stage != StageQueued && ev.Stage != StageComplete {
				t.Errorf("torn event stage: %+v", ev)
			}
			if ev.Op != FOpWrite || ev.N != 4 || ev.Err != ClassNone || ev.Aux != 0 {
				t.Errorf("torn event payload: %+v", ev)
			}
		}
		select {
		case <-done:
			return
		default:
		}
	}
}

func TestFlightJSONLRoundTrip(t *testing.T) {
	r := NewFlightRecorder(64)
	r.SetEnabled(true)
	a, b := r.NextID(), r.NextID()
	r.Record(a, StageQueued, FOpWrite, 8, ClassNone, 0)
	r.Record(b, StageMerged, FOpWrite, 4, ClassNone, a)
	r.Record(a, StageDispatch, FOpWrite, 12, ClassNone, 1)
	r.Record(a, StageComplete, FOpWrite, 12, ClassMedium, 0)
	r.Record(0, StageCommitFlip, FOpSync, 3, ClassNone, 7)

	var buf bytes.Buffer
	if err := r.WriteJSONL(&buf); err != nil {
		t.Fatalf("WriteJSONL: %v", err)
	}
	if !strings.Contains(buf.String(), `"stage":"M"`) ||
		!strings.Contains(buf.String(), `"err":"medium"`) ||
		!strings.Contains(buf.String(), `"stage":"commit-flip"`) {
		t.Fatalf("jsonl missing symbolic names:\n%s", buf.String())
	}
	got, err := ReadJSONL(&buf)
	if err != nil {
		t.Fatalf("ReadJSONL: %v", err)
	}
	want := r.Events()
	if len(got) != len(want) {
		t.Fatalf("round trip lost events: %d != %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("round trip [%d]: got %+v want %+v", i, got[i], want[i])
		}
	}
}

func TestFlightReadJSONLBad(t *testing.T) {
	if _, err := ReadJSONL(strings.NewReader("{\"stage\":\"nope\",\"id\":1}\n")); err == nil {
		t.Fatal("unknown stage parsed without error")
	}
	if _, err := ReadJSONL(strings.NewReader("not json\n")); err == nil {
		t.Fatal("garbage parsed without error")
	}
	evs, err := ReadJSONL(strings.NewReader("\n\n"))
	if err != nil || len(evs) != 0 {
		t.Fatalf("blank lines: %v, %d events", err, len(evs))
	}
}

// BenchmarkFlightRecorderDisabled guards the advertised disabled cost —
// one nil check plus one atomic load, ~1 ns, 0 allocs. The bench-smoke CI
// job keeps it compiling; bench_pr9.sh prices it.
func BenchmarkFlightRecorderDisabled(b *testing.B) {
	r := NewFlightRecorder(0)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		r.Record(uint64(i), StageQueued, FOpWrite, 8, ClassNone, 0)
	}
}

// BenchmarkFlightRecorderNil is the cost at call sites whose recorder was
// never wired (nil receiver).
func BenchmarkFlightRecorderNil(b *testing.B) {
	var r *FlightRecorder
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		r.Record(uint64(i), StageQueued, FOpWrite, 8, ClassNone, 0)
	}
}

// BenchmarkFlightRecorderRecord is the enabled cost: one atomic Add plus
// six atomic stores, lock-free, 0 allocs.
func BenchmarkFlightRecorderRecord(b *testing.B) {
	r := NewFlightRecorder(1 << 12)
	r.SetEnabled(true)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		r.Record(uint64(i)+1, StageQueued, FOpWrite, 8, ClassNone, 0)
	}
}

func BenchmarkFlightRecorderRecordParallel(b *testing.B) {
	r := NewFlightRecorder(1 << 12)
	r.SetEnabled(true)
	b.ReportAllocs()
	b.RunParallel(func(pb *testing.PB) {
		fid := r.NextID()
		for pb.Next() {
			r.Record(fid, StageDevOp, FOpWrite, 8, ClassNone, 0)
		}
	})
}

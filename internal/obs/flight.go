package obs

// Flight recorder: a blktrace-style causal trace of request lifecycles.
//
// Where the old Tracer kept one flat span per request (recorded once, at
// completion), the flight recorder keeps a bounded ring of *events*: each
// stage a request passes through appends one fixed-size record keyed by a
// per-request id, so an offline analyzer (internal/obs/analyze.go, surfaced
// as `mobiceal trace`) can reconstruct Q2D/D2C/Q2C latency attribution,
// merge chains, queue-depth timelines, and commit-round folding — the btt
// pipeline, in process.
//
// The stage vocabulary mirrors blktrace actions where an analogue exists
// (Q=queued, G=staged, M=merged-into, D=dispatched, C=completed) and adds
// the thinp stages the kernel hides inside dm (map-resolve, provision,
// replace, commit-join, commit-flip) plus the leaf device op recorded by
// storage.StatsDevice.
//
// Design constraints, in order:
//
//  1. Disabled cost ≈ one atomic load. Every Record call starts with a
//     nil check and one atomic.Bool load; a disabled recorder does nothing
//     else. Call sites on the hot path pay nothing when tracing is off.
//  2. Lock-free when enabled. The ring is sharded; a writer claims a slot
//     with one per-shard atomic Add and publishes through a seqlock-style
//     per-slot sequence word. Every slot field is an atomic, so concurrent
//     readers never see torn values (and the race detector agrees); the
//     sequence re-check discards slots overwritten mid-read.
//  3. Memory-only. Nothing here ever reaches a device — see the
//     Observability section of DESIGN.md for why persistence would be a
//     side channel in MobiCeal's threat model.
//  4. Deniability-safe vocabulary. Events carry NO block addresses, NO
//     thin/volume ids — only stage, op kind, block count, error class and
//     a stage-specific aux (merge head id, commit round). Dummy writes
//     traverse the same choke points as hidden writes and emit the same
//     per-block event shapes.

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"sync/atomic"
)

// Stage identifies one step of a request's lifecycle.
type Stage uint8

const (
	stageInvalid Stage = iota

	// Scheduler stages (blktrace actions).

	// StageQueued (Q): request entered a volume queue (ioq.Submit*).
	StageQueued
	// StageStaged (G): request drained into a dispatch batch.
	StageStaged
	// StageMerged (M): request was coalesced into a merge run; Aux holds
	// the id of the surviving head request.
	StageMerged
	// StageDispatch (D): one device-level attempt started; Aux holds the
	// 1-based attempt number (retries re-dispatch).
	StageDispatch
	// StageComplete (C): terminal completion, or — when Aux is a nonzero
	// attempt number — one failed attempt that will be retried. Err
	// carries the error class.
	StageComplete

	// Thin-pool stages.

	// StageMapResolve: the mapping walk resolved N virtual blocks to
	// physical extents (reads: before the copy; writes: the fully-mapped
	// walk immediately before the extent writes).
	StageMapResolve
	// StageProvision: one physical block was allocated. Recorded inside
	// the allocator choke point, so real provisioning and dummy writes
	// are indistinguishable here by construction.
	StageProvision
	// StageReplace: one block was reallocate-on-write replaced.
	StageReplace
	// StageCommitJoin: the request reached the group-commit door; Aux is
	// the commit round it folded into.
	StageCommitJoin
	// StageCommitFlip: a commit round flipped the metadata slot; Aux is
	// the round, N the number of callers folded into it.
	StageCommitFlip

	// StageDevOp: a leaf device operation observed by storage.StatsDevice.
	StageDevOp

	stageCount
)

var stageNames = [stageCount]string{
	stageInvalid:    "?",
	StageQueued:     "Q",
	StageStaged:     "G",
	StageMerged:     "M",
	StageDispatch:   "D",
	StageComplete:   "C",
	StageMapResolve: "map-resolve",
	StageProvision:  "provision",
	StageReplace:    "replace",
	StageCommitJoin: "commit-join",
	StageCommitFlip: "commit-flip",
	StageDevOp:      "devop",
}

func (s Stage) String() string {
	if int(s) < len(stageNames) {
		return stageNames[s]
	}
	return "?"
}

// FlightOp is the request kind an event belongs to. It mirrors ioq's op
// vocabulary without importing it (obs sits below every other package).
type FlightOp uint8

const (
	FOpNone FlightOp = iota
	FOpRead
	FOpWrite
	FOpDiscard
	FOpSync
	FOpQuiesce

	fopCount
)

var fopNames = [fopCount]string{"", "read", "write", "discard", "sync", "quiesce"}

func (o FlightOp) String() string {
	if int(o) < len(fopNames) {
		return fopNames[o]
	}
	return "?"
}

// ErrClass is the coarse error classification attached to completion
// events. It deliberately carries no error text: class is enough for
// attribution, and strings would allocate on the record path.
type ErrClass uint8

const (
	ClassNone ErrClass = iota
	ClassTransient
	ClassMedium
	ClassOther

	classCount
)

var classNames = [classCount]string{"", "transient", "medium", "error"}

func (c ErrClass) String() string {
	if int(c) < len(classNames) {
		return classNames[c]
	}
	return "?"
}

// FlightEvent is one decoded lifecycle event. At is nanoseconds since the
// obs process epoch (same clock as NowNS).
type FlightEvent struct {
	ReqID uint64
	At    int64
	Stage Stage
	Op    FlightOp
	Err   ErrClass
	N     uint32
	Aux   uint64
}

// flightWire is the JSON shape of an event (one object per JSONL line).
type flightWire struct {
	ID    uint64 `json:"id"`
	AtNS  int64  `json:"at_ns"`
	Stage string `json:"stage"`
	Op    string `json:"op,omitempty"`
	N     uint32 `json:"n,omitempty"`
	Err   string `json:"err,omitempty"`
	Aux   uint64 `json:"aux,omitempty"`
}

// MarshalJSON renders the event with symbolic stage/op/err names.
func (e FlightEvent) MarshalJSON() ([]byte, error) {
	return json.Marshal(flightWire{
		ID: e.ReqID, AtNS: e.At, Stage: e.Stage.String(),
		Op: e.Op.String(), N: e.N, Err: e.Err.String(), Aux: e.Aux,
	})
}

// UnmarshalJSON parses the symbolic form back (for offline replay).
func (e *FlightEvent) UnmarshalJSON(b []byte) error {
	var w flightWire
	if err := json.Unmarshal(b, &w); err != nil {
		return err
	}
	st := stageInvalid
	for i, n := range stageNames {
		if n == w.Stage && Stage(i) != stageInvalid {
			st = Stage(i)
		}
	}
	if st == stageInvalid {
		return fmt.Errorf("obs: unknown stage %q", w.Stage)
	}
	op := FOpNone
	for i, n := range fopNames {
		if n == w.Op {
			op = FlightOp(i)
		}
	}
	cl := ClassNone
	for i, n := range classNames {
		if n == w.Err {
			cl = ErrClass(i)
		}
	}
	*e = FlightEvent{ReqID: w.ID, At: w.AtNS, Stage: st, Op: op, Err: cl, N: w.N, Aux: w.Aux}
	return nil
}

// flightSlot is one published event. All fields are atomics: the writer
// stores seq=0 (invalidate), then the payload, then seq=ticket (publish);
// a reader accepts the payload only if seq is nonzero and unchanged across
// the read. Tickets are monotone per shard, so ABA cannot occur.
type flightSlot struct {
	seq   atomic.Uint64
	reqID atomic.Uint64
	at    atomic.Int64
	word  atomic.Uint64 // stage<<56 | op<<48 | err<<40 | n
	aux   atomic.Uint64
}

func packWord(st Stage, op FlightOp, ec ErrClass, n uint32) uint64 {
	return uint64(st)<<56 | uint64(op)<<48 | uint64(ec)<<40 | uint64(n)
}

func unpackWord(w uint64) (Stage, FlightOp, ErrClass, uint32) {
	return Stage(w >> 56), FlightOp(w >> 48 & 0xff), ErrClass(w >> 40 & 0xff), uint32(w)
}

// flightShard holds one cursor and its slice of the ring. The pad keeps
// neighbouring cursors off one cache line.
type flightShard struct {
	cursor atomic.Uint64
	_      [7]uint64
	slots  []flightSlot
}

const (
	// flightShards is the shard count; events of one request hash to one
	// shard, so per-request ticket order is a total order.
	flightShards = 8
	// DefaultFlightEvents is the total ring capacity when NewFlightRecorder
	// is given a non-positive size.
	DefaultFlightEvents = 1 << 14
)

// FlightRecorder is the sharded lifecycle event ring. The zero value is
// unusable; a nil *FlightRecorder is a valid always-disabled recorder, so
// call sites never need a nil check beyond the one Record itself does.
type FlightRecorder struct {
	on     atomic.Bool
	nextID atomic.Uint64
	spread atomic.Uint64 // shard picker for id-0 events
	mask   uint64        // per-shard slot index mask (len-1, power of two)
	shards [flightShards]flightShard
}

// NewFlightRecorder returns a disabled recorder holding roughly `events`
// records (rounded up to a power of two per shard; <=0 means
// DefaultFlightEvents). Memory is allocated up front so enabling mid-run
// never allocates on an I/O path.
func NewFlightRecorder(events int) *FlightRecorder {
	if events <= 0 {
		events = DefaultFlightEvents
	}
	per := 1
	for per < (events+flightShards-1)/flightShards {
		per <<= 1
	}
	r := &FlightRecorder{mask: uint64(per - 1)}
	for i := range r.shards {
		r.shards[i].slots = make([]flightSlot, per)
	}
	return r
}

// Enabled reports whether recording is on. Nil-safe.
func (r *FlightRecorder) Enabled() bool { return r != nil && r.on.Load() }

// SetEnabled switches recording on or off. Nil-safe no-op when nil.
func (r *FlightRecorder) SetEnabled(on bool) {
	if r != nil {
		r.on.Store(on)
	}
}

// NextID returns a fresh nonzero request id. Nil-safe (returns 0, the
// "untagged" id, when the recorder is nil).
func (r *FlightRecorder) NextID() uint64 {
	if r == nil {
		return 0
	}
	return r.nextID.Add(1)
}

// Capacity returns the total number of event slots.
func (r *FlightRecorder) Capacity() int {
	if r == nil {
		return 0
	}
	return flightShards * int(r.mask+1)
}

// Record appends one event. fid may be 0 (untagged). Disabled cost is the
// nil check plus one atomic load; enabled cost is one atomic Add and six
// atomic stores, no locks, no allocation.
func (r *FlightRecorder) Record(fid uint64, st Stage, op FlightOp, n uint32, ec ErrClass, aux uint64) {
	if r == nil || !r.on.Load() {
		return
	}
	r.record(fid, st, op, n, ec, aux)
}

func (r *FlightRecorder) record(fid uint64, st Stage, op FlightOp, n uint32, ec ErrClass, aux uint64) {
	var si uint64
	if fid != 0 {
		si = (fid * 0x9e3779b97f4a7c15) >> 56 % flightShards
	} else {
		si = r.spread.Add(1) % flightShards
	}
	sh := &r.shards[si]
	ticket := sh.cursor.Add(1)
	s := &sh.slots[(ticket-1)&r.mask]
	s.seq.Store(0)
	s.reqID.Store(fid)
	s.at.Store(NowNS())
	s.word.Store(packWord(st, op, ec, n))
	s.aux.Store(aux)
	s.seq.Store(ticket)
}

// Reset discards all recorded events (recording state is unchanged).
func (r *FlightRecorder) Reset() {
	if r == nil {
		return
	}
	for i := range r.shards {
		sh := &r.shards[i]
		for j := range sh.slots {
			sh.slots[j].seq.Store(0)
		}
	}
}

// Events returns a snapshot of the ring, sorted by timestamp (ties keep
// per-shard ticket order, which is per-request causal order). Events being
// overwritten concurrently are skipped; the snapshot is taken by the
// scraper and costs the I/O path nothing.
func (r *FlightRecorder) Events() []FlightEvent {
	if r == nil {
		return nil
	}
	type keyed struct {
		ev     FlightEvent
		ticket uint64
		shard  uint64
	}
	var all []keyed
	for i := range r.shards {
		sh := &r.shards[i]
		for j := range sh.slots {
			s := &sh.slots[j]
			seq1 := s.seq.Load()
			if seq1 == 0 {
				continue
			}
			ev := FlightEvent{ReqID: s.reqID.Load(), At: s.at.Load(), Aux: s.aux.Load()}
			ev.Stage, ev.Op, ev.Err, ev.N = unpackWord(s.word.Load())
			if s.seq.Load() != seq1 {
				continue // overwritten mid-read
			}
			all = append(all, keyed{ev: ev, ticket: seq1, shard: uint64(i)})
		}
	}
	sort.Slice(all, func(a, b int) bool {
		if all[a].ev.At != all[b].ev.At {
			return all[a].ev.At < all[b].ev.At
		}
		if all[a].shard != all[b].shard {
			return all[a].shard < all[b].shard
		}
		return all[a].ticket < all[b].ticket
	})
	out := make([]FlightEvent, len(all))
	for i := range all {
		out[i] = all[i].ev
	}
	return out
}

// WriteJSONL streams the current snapshot as one JSON object per line —
// the raw-event export format `mobiceal trace -jsonl` emits and
// ReadJSONL parses back.
func (r *FlightRecorder) WriteJSONL(w io.Writer) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	for _, ev := range r.Events() {
		if err := enc.Encode(ev); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadJSONL parses a JSONL event stream produced by WriteJSONL. Blank
// lines are skipped.
func ReadJSONL(rd io.Reader) ([]FlightEvent, error) {
	var out []FlightEvent
	sc := bufio.NewScanner(rd)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	for sc.Scan() {
		line := sc.Bytes()
		if len(line) == 0 {
			continue
		}
		var ev FlightEvent
		if err := json.Unmarshal(line, &ev); err != nil {
			return nil, err
		}
		out = append(out, ev)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return out, nil
}

package obs

import (
	"fmt"
	"math"
	"math/bits"
	"strings"
	"sync/atomic"
	"time"
)

// HistBuckets is the number of power-of-two latency buckets. Bucket i
// counts observations in [2^i, 2^(i+1)) nanoseconds (bucket 0 also takes
// sub-nanosecond and non-positive durations); the last bucket is a
// catch-all above ~2.3 minutes. 38 buckets keep a Histogram at a few
// cache lines while covering every latency the stack can produce.
const HistBuckets = 38

// Histogram is a lock-free latency histogram with power-of-two buckets.
// Observe is one bit-length computation plus two atomic adds — cheap
// enough for per-request hot paths — and never allocates. The zero value
// is ready to use.
//
// Snapshots are taken bucket by bucket without a lock: a snapshot racing
// concurrent observers may be off by the in-flight observations, which is
// the usual (and acceptable) monitoring contract.
type Histogram struct {
	count   atomic.Uint64
	sumNS   atomic.Int64
	buckets [HistBuckets]atomic.Uint64
}

// bucketOf maps a duration in nanoseconds to its bucket index.
func bucketOf(ns int64) int {
	if ns < 2 {
		return 0
	}
	b := bits.Len64(uint64(ns)) - 1
	if b >= HistBuckets {
		b = HistBuckets - 1
	}
	return b
}

// Observe records one duration.
func (h *Histogram) Observe(d time.Duration) { h.ObserveNS(int64(d)) }

// ObserveNS records one duration given in nanoseconds — the natural form
// when the caller already holds NowNS deltas.
func (h *Histogram) ObserveNS(ns int64) {
	h.buckets[bucketOf(ns)].Add(1)
	h.count.Add(1)
	h.sumNS.Add(ns)
}

// Since records the elapsed time from t0 to now — the usual call pattern
// around an instrumented section.
func (h *Histogram) Since(t0 time.Time) { h.Observe(time.Since(t0)) }

// Count returns the number of observations.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// Reset zeroes the histogram (owner-side re-baselining; see Counter.Reset
// for the concurrency contract).
func (h *Histogram) Reset() {
	h.count.Store(0)
	h.sumNS.Store(0)
	for i := range h.buckets {
		h.buckets[i].Store(0)
	}
}

// Snapshot captures the histogram's current state.
func (h *Histogram) Snapshot() HistSnapshot {
	var s HistSnapshot
	s.Count = h.count.Load()
	s.SumNS = h.sumNS.Load()
	for i := range h.buckets {
		s.Buckets[i] = h.buckets[i].Load()
	}
	return s
}

// HistSnapshot is a point-in-time copy of a Histogram, the form that
// travels in telemetry snapshots and renders quantile estimates.
type HistSnapshot struct {
	Count   uint64              `json:"count"`
	SumNS   int64               `json:"sum_ns"`
	Buckets [HistBuckets]uint64 `json:"buckets"`
}

// Mean returns the arithmetic mean, or 0 with no observations.
func (s HistSnapshot) Mean() time.Duration {
	if s.Count == 0 {
		return 0
	}
	return time.Duration(s.SumNS / int64(s.Count))
}

// Quantile returns an upper bound for the q-quantile (0 < q <= 1): the
// exclusive upper edge of the bucket the rank falls in. Power-of-two
// buckets bound the estimate within 2x of the true value, which is all a
// status surface needs.
//
// Edge contract (pinned by TestQuantileEdges): an empty snapshot and q<=0
// return 0; q is clamped to 1; the rank is the ceiling of q*Count clamped
// to [1, Count], so q=1 lands exactly on the upper edge of the highest
// non-empty bucket (a floor rank here can fall one observation — and so
// one power-of-two bucket — short of the tail).
func (s HistSnapshot) Quantile(q float64) time.Duration {
	if s.Count == 0 || q <= 0 {
		return 0
	}
	if q >= 1 {
		q = 1
	}
	rank := uint64(math.Ceil(q * float64(s.Count)))
	if rank == 0 {
		rank = 1
	}
	if rank > s.Count {
		rank = s.Count
	}
	var seen uint64
	for i, c := range s.Buckets {
		seen += c
		if seen >= rank {
			return bucketUpper(i)
		}
	}
	return bucketUpper(HistBuckets - 1)
}

// bucketUpper returns the exclusive upper edge of bucket i.
func bucketUpper(i int) time.Duration {
	return time.Duration(int64(1) << uint(i+1))
}

// String renders a compact one-line summary ("n=120 mean=11µs p50≤16µs
// p99≤33µs"), the form the status one-liner embeds.
func (s HistSnapshot) String() string {
	if s.Count == 0 {
		return "n=0"
	}
	var b strings.Builder
	fmt.Fprintf(&b, "n=%d mean=%v p50≤%v p99≤%v",
		s.Count, s.Mean().Round(time.Microsecond),
		s.Quantile(0.50), s.Quantile(0.99))
	return b.String()
}

package obs

// Offline analysis of flight-recorder event streams — the btt analogue.
// Given a snapshot (live or replayed from JSONL), Analyze reconstructs per
// request the classic blktrace intervals:
//
//	Q2D  submit → first device dispatch   (time spent queued/staged/merged)
//	D2C  last dispatch → completion       (device service time, last attempt)
//	Q2C  submit → completion              (total request latency)
//
// plus merge-chain statistics (from M events), time-weighted queue-depth
// and in-flight timelines (from Q/D/C transitions), and commit-round
// attribution (how many callers folded into each metadata slot flip, and
// how long each waited on the group-commit door).

import (
	"fmt"
	"sort"
	"time"
)

// LatDist is an exact latency distribution (computed from the individual
// samples, not histogram buckets — a trace window is bounded, so we can
// afford exact percentiles here).
type LatDist struct {
	Count  int   `json:"count"`
	MinNS  int64 `json:"min_ns"`
	MaxNS  int64 `json:"max_ns"`
	MeanNS int64 `json:"mean_ns"`
	P50NS  int64 `json:"p50_ns"`
	P90NS  int64 `json:"p90_ns"`
	P99NS  int64 `json:"p99_ns"`
}

func distOf(samples []int64) LatDist {
	if len(samples) == 0 {
		return LatDist{}
	}
	sort.Slice(samples, func(i, j int) bool { return samples[i] < samples[j] })
	var sum int64
	for _, s := range samples {
		sum += s
	}
	pct := func(q float64) int64 {
		i := int(q * float64(len(samples)-1))
		return samples[i]
	}
	return LatDist{
		Count:  len(samples),
		MinNS:  samples[0],
		MaxNS:  samples[len(samples)-1],
		MeanNS: sum / int64(len(samples)),
		P50NS:  pct(0.50),
		P90NS:  pct(0.90),
		P99NS:  pct(0.99),
	}
}

// String renders the distribution compactly for human tables.
func (d LatDist) String() string {
	if d.Count == 0 {
		return "n=0"
	}
	return fmt.Sprintf("n=%d min=%v mean=%v p50=%v p90=%v p99=%v max=%v",
		d.Count, time.Duration(d.MinNS), time.Duration(d.MeanNS),
		time.Duration(d.P50NS), time.Duration(d.P90NS),
		time.Duration(d.P99NS), time.Duration(d.MaxNS))
}

// OpLat is the Q2D/D2C/Q2C attribution for one op kind.
type OpLat struct {
	Op  string  `json:"op"`
	Q2D LatDist `json:"q2d"`
	D2C LatDist `json:"d2c"`
	Q2C LatDist `json:"q2c"`
}

// MergeStats summarizes merge chains (M events).
type MergeStats struct {
	Chains    int     `json:"chains"`     // merge heads with >=1 child
	Merged    int     `json:"merged"`     // children merged into a head
	MaxChain  int     `json:"max_chain"`  // largest chain incl. head
	MeanChain float64 `json:"mean_chain"` // mean chain length incl. head
}

// CommitRound is one metadata slot flip and the callers folded into it.
type CommitRound struct {
	Round    uint64  `json:"round"`
	Folded   int     `json:"folded"`    // callers folded (from the flip event)
	Joins    int     `json:"joins"`     // join events observed in-window
	FlipAtNS int64   `json:"flip_at_ns"`
	DoorWait LatDist `json:"door_wait"` // per-joiner flip.At - join.At
}

// CommitStats aggregates commit-round attribution across the window.
type CommitStats struct {
	Rounds     int           `json:"rounds"`
	Folded     int           `json:"folded"`
	MeanFolded float64       `json:"mean_folded"`
	DoorWait   LatDist       `json:"door_wait"`
	PerRound   []CommitRound `json:"per_round,omitempty"`
}

// TimelinePoint is one sample of the queue-depth / in-flight timelines.
type TimelinePoint struct {
	AtNS     int64 `json:"at_ns"`
	Queued   int   `json:"queued"`
	InFlight int   `json:"in_flight"`
}

// StageCount is the number of events seen for one stage.
type StageCount struct {
	Stage string `json:"stage"`
	Count int    `json:"count"`
	N     uint64 `json:"blocks"` // sum of per-event block counts
}

// TraceReport is the full analysis of one event window.
type TraceReport struct {
	Events    int          `json:"events"`
	Requests  int          `json:"requests"`  // distinct nonzero request ids
	Completed int          `json:"completed"` // requests with a terminal C
	SpanNS    int64        `json:"span_ns"`   // last event At - first event At
	Stages    []StageCount `json:"stages"`
	Ops       []OpLat      `json:"ops"`
	QueueMax  int          `json:"queue_max"`
	QueueMean float64      `json:"queue_mean"` // time-weighted
	FlightMax int          `json:"in_flight_max"`
	Merge     MergeStats   `json:"merge"`
	Commits   CommitStats  `json:"commits"`
	Timeline  []TimelinePoint `json:"timeline,omitempty"`
	Errors    map[string]int  `json:"errors,omitempty"` // error class -> completions
}

// maxTimelinePoints caps the emitted timeline; transitions beyond it are
// uniformly downsampled so the report stays plottable at any window size.
const maxTimelinePoints = 256

type reqTrace struct {
	op     FlightOp
	q      int64
	firstD int64
	lastD  int64
	c      int64
	hasQ   bool
	hasD   bool
	done   bool // terminal C (Aux==0 on a C event)
}

// Analyze builds a TraceReport from an event stream (need not be sorted;
// it is sorted by timestamp internally, as Events() snapshots already are).
func Analyze(events []FlightEvent) *TraceReport {
	evs := make([]FlightEvent, len(events))
	copy(evs, events)
	sort.SliceStable(evs, func(i, j int) bool { return evs[i].At < evs[j].At })

	rep := &TraceReport{Events: len(evs), Errors: map[string]int{}}
	if len(evs) > 0 {
		rep.SpanNS = evs[len(evs)-1].At - evs[0].At
	}

	reqs := map[uint64]*reqTrace{}
	var stageCounts [stageCount]StageCount
	chains := map[uint64]int{} // head id -> children merged in
	joins := map[uint64][]int64{}
	flips := map[uint64]*CommitRound{}

	// Timeline state: every Q/D/C transition is a point.
	var queued, inflight, queueMax, flightMax int
	var points []TimelinePoint

	for _, ev := range evs {
		sc := &stageCounts[ev.Stage]
		sc.Count++
		sc.N += uint64(ev.N)

		var rt *reqTrace
		if ev.ReqID != 0 {
			rt = reqs[ev.ReqID]
			if rt == nil {
				rt = &reqTrace{op: ev.Op}
				reqs[ev.ReqID] = rt
			}
			if rt.op == FOpNone {
				rt.op = ev.Op
			}
		}

		depthChanged := false
		switch ev.Stage {
		case StageQueued:
			queued++
			depthChanged = true
			if rt != nil {
				rt.q, rt.hasQ = ev.At, true
			}
		case StageMerged:
			if ev.Aux != 0 {
				chains[ev.Aux]++
			}
		case StageDispatch:
			if rt != nil {
				if !rt.hasD {
					rt.firstD, rt.hasD = ev.At, true
					if queued > 0 {
						queued--
					}
					inflight++
					depthChanged = true
				}
				rt.lastD = ev.At
			}
		case StageComplete:
			if ev.Aux == 0 { // terminal completion
				if rt != nil && !rt.done {
					rt.c, rt.done = ev.At, true
					if rt.hasD {
						if inflight > 0 {
							inflight--
						}
					} else if queued > 0 {
						queued--
					}
					depthChanged = true
				}
				if ev.Err != ClassNone {
					rep.Errors[ev.Err.String()]++
				}
			} else if ev.Err != ClassNone {
				rep.Errors[ev.Err.String()]++
			}
		case StageCommitJoin:
			joins[ev.Aux] = append(joins[ev.Aux], ev.At)
		case StageCommitFlip:
			flips[ev.Aux] = &CommitRound{Round: ev.Aux, Folded: int(ev.N), FlipAtNS: ev.At}
		}

		if depthChanged {
			points = append(points, TimelinePoint{AtNS: ev.At, Queued: queued, InFlight: inflight})
			if queued > queueMax {
				queueMax = queued
			}
			if inflight > flightMax {
				flightMax = inflight
			}
		}
	}

	// Time-weighted mean queue depth from the transition points.
	if len(points) > 1 {
		var integral float64
		for i := 1; i < len(points); i++ {
			dt := float64(points[i].AtNS - points[i-1].AtNS)
			integral += float64(points[i-1].Queued) * dt
		}
		span := float64(points[len(points)-1].AtNS - points[0].AtNS)
		if span > 0 {
			rep.QueueMean = integral / span
		}
	}
	rep.QueueMax, rep.FlightMax = queueMax, flightMax

	// Downsample the timeline.
	if len(points) > maxTimelinePoints {
		stride := (len(points) + maxTimelinePoints - 1) / maxTimelinePoints
		var ds []TimelinePoint
		for i := 0; i < len(points); i += stride {
			ds = append(ds, points[i])
		}
		ds = append(ds, points[len(points)-1])
		points = ds
	}
	rep.Timeline = points

	// Per-op latency attribution.
	type opAcc struct{ q2d, d2c, q2c []int64 }
	accs := map[FlightOp]*opAcc{}
	for _, rt := range reqs {
		if !rt.done {
			continue
		}
		rep.Completed++
		a := accs[rt.op]
		if a == nil {
			a = &opAcc{}
			accs[rt.op] = a
		}
		if rt.hasQ && rt.hasD {
			a.q2d = append(a.q2d, rt.firstD-rt.q)
		}
		if rt.hasD {
			a.d2c = append(a.d2c, rt.c-rt.lastD)
		}
		if rt.hasQ {
			a.q2c = append(a.q2c, rt.c-rt.q)
		}
	}
	rep.Requests = len(reqs)
	var ops []FlightOp
	for op := range accs {
		ops = append(ops, op)
	}
	sort.Slice(ops, func(i, j int) bool { return ops[i] < ops[j] })
	for _, op := range ops {
		a := accs[op]
		rep.Ops = append(rep.Ops, OpLat{
			Op: op.String(), Q2D: distOf(a.q2d), D2C: distOf(a.d2c), Q2C: distOf(a.q2c),
		})
	}

	// Stage table (skip empty stages).
	for i := range stageCounts {
		if stageCounts[i].Count > 0 {
			rep.Stages = append(rep.Stages, StageCount{
				Stage: Stage(i).String(), Count: stageCounts[i].Count, N: stageCounts[i].N,
			})
		}
	}

	// Merge chains.
	for _, kids := range chains {
		rep.Merge.Chains++
		rep.Merge.Merged += kids
		if kids+1 > rep.Merge.MaxChain {
			rep.Merge.MaxChain = kids + 1
		}
	}
	if rep.Merge.Chains > 0 {
		rep.Merge.MeanChain = float64(rep.Merge.Merged+rep.Merge.Chains) / float64(rep.Merge.Chains)
	}

	// Commit attribution.
	var rounds []uint64
	for r := range flips {
		rounds = append(rounds, r)
	}
	sort.Slice(rounds, func(i, j int) bool { return rounds[i] < rounds[j] })
	var allWaits []int64
	for _, r := range rounds {
		cr := flips[r]
		var waits []int64
		for _, at := range joins[r] {
			if at <= cr.FlipAtNS {
				waits = append(waits, cr.FlipAtNS-at)
			}
		}
		cr.Joins = len(joins[r])
		allWaits = append(allWaits, waits...)
		cr.DoorWait = distOf(waits)
		rep.Commits.Rounds++
		rep.Commits.Folded += cr.Folded
		rep.Commits.PerRound = append(rep.Commits.PerRound, *cr)
	}
	if rep.Commits.Rounds > 0 {
		rep.Commits.MeanFolded = float64(rep.Commits.Folded) / float64(rep.Commits.Rounds)
	}
	rep.Commits.DoorWait = distOf(allWaits)
	if len(rep.Errors) == 0 {
		rep.Errors = nil
	}
	return rep
}

package obs

import (
	"fmt"
	"sync"
	"testing"
	"time"
)

func TestCounterGaugeBasics(t *testing.T) {
	var c Counter
	c.Inc()
	c.Add(41)
	if got := c.Load(); got != 42 {
		t.Fatalf("counter = %d, want 42", got)
	}
	c.Reset()
	if got := c.Load(); got != 0 {
		t.Fatalf("counter after reset = %d, want 0", got)
	}

	var g Gauge
	g.Inc()
	g.Add(5)
	g.Dec()
	if got := g.Load(); got != 5 {
		t.Fatalf("gauge = %d, want 5", got)
	}
	g.Set(-3)
	if got := g.Load(); got != -3 {
		t.Fatalf("gauge after set = %d, want -3", got)
	}
}

func TestHistogramBuckets(t *testing.T) {
	cases := []struct {
		ns   int64
		want int
	}{
		{-5, 0}, {0, 0}, {1, 0}, {2, 1}, {3, 1}, {4, 2}, {7, 2}, {8, 3},
		{1023, 9}, {1024, 10}, {1 << 37, HistBuckets - 1},
		{1 << 40, HistBuckets - 1}, {1<<62 + 7, HistBuckets - 1},
	}
	for _, tc := range cases {
		if got := bucketOf(tc.ns); got != tc.want {
			t.Errorf("bucketOf(%d) = %d, want %d", tc.ns, got, tc.want)
		}
	}
}

func TestHistogramObserveAndQuantile(t *testing.T) {
	var h Histogram
	// 90 fast observations at 1µs, 10 slow at 1ms.
	for i := 0; i < 90; i++ {
		h.Observe(time.Microsecond)
	}
	for i := 0; i < 10; i++ {
		h.Observe(time.Millisecond)
	}
	s := h.Snapshot()
	if s.Count != 100 {
		t.Fatalf("count = %d, want 100", s.Count)
	}
	wantSum := int64(90)*int64(time.Microsecond) + int64(10)*int64(time.Millisecond)
	if s.SumNS != wantSum {
		t.Fatalf("sum = %d, want %d", s.SumNS, wantSum)
	}
	// p50 must land in the fast bucket, p99 in the slow bucket. The
	// estimate is the bucket's upper edge, so fast ≤ 2µs-ish, slow ≥ 1ms.
	if p50 := s.Quantile(0.50); p50 > 2*time.Microsecond {
		t.Fatalf("p50 = %v, want within fast bucket", p50)
	}
	if p99 := s.Quantile(0.99); p99 < time.Millisecond {
		t.Fatalf("p99 = %v, want within slow bucket", p99)
	}
	// Quantile upper bound property: at least quantile-fraction of
	// observations are <= the returned edge.
	if q1 := s.Quantile(1); q1 < time.Millisecond {
		t.Fatalf("p100 = %v, want >= 1ms", q1)
	}
	if got := s.Mean(); got != time.Duration(wantSum/100) {
		t.Fatalf("mean = %v, want %v", got, time.Duration(wantSum/100))
	}

	h.Reset()
	s = h.Snapshot()
	if s.Count != 0 || s.SumNS != 0 {
		t.Fatalf("after reset: count=%d sum=%d, want zeros", s.Count, s.SumNS)
	}
	if s.Quantile(0.5) != 0 || s.Mean() != 0 || s.String() != "n=0" {
		t.Fatalf("empty snapshot rendering wrong: %q", s.String())
	}
}

func TestHistogramString(t *testing.T) {
	var h Histogram
	h.Observe(10 * time.Microsecond)
	got := h.Snapshot().String()
	if got == "" || got == "n=0" {
		t.Fatalf("String() = %q, want populated summary", got)
	}
}

func TestEventLogRing(t *testing.T) {
	l := NewEventLog(4)
	if got := l.Snapshot(); len(got) != 0 {
		t.Fatalf("empty log snapshot len = %d", len(got))
	}
	for i := 1; i <= 6; i++ {
		l.Append("k", fmt.Sprintf("e%d", i))
	}
	if l.Seq() != 6 {
		t.Fatalf("seq = %d, want 6", l.Seq())
	}
	got := l.Snapshot()
	if len(got) != 4 {
		t.Fatalf("snapshot len = %d, want 4", len(got))
	}
	// Oldest-first: e3..e6 with sequence numbers 3..6.
	for i, e := range got {
		wantSeq := uint64(i + 3)
		wantDetail := fmt.Sprintf("e%d", i+3)
		if e.Seq != wantSeq || e.Detail != wantDetail || e.Kind != "k" {
			t.Fatalf("snapshot[%d] = %+v, want seq=%d detail=%q", i, e, wantSeq, wantDetail)
		}
	}
}

func TestEventLogDefaultCapacity(t *testing.T) {
	l := NewEventLog(0)
	for i := 0; i < DefaultEventLogSize+10; i++ {
		l.Append("k", "d")
	}
	if got := len(l.Snapshot()); got != DefaultEventLogSize {
		t.Fatalf("retained = %d, want %d", got, DefaultEventLogSize)
	}
}

// TestQuantileEdges pins the edge contract of HistSnapshot.Quantile:
// empty snapshots, q at and beyond the [0,1] boundaries, single-bucket
// populations, and the ceil-rank behaviour that keeps q=1 on the upper
// edge of the highest non-empty bucket.
func TestQuantileEdges(t *testing.T) {
	var empty HistSnapshot
	for _, q := range []float64{-1, 0, 0.5, 1, 2} {
		if got := empty.Quantile(q); got != 0 {
			t.Fatalf("empty.Quantile(%v) = %v, want 0", q, got)
		}
	}

	var h Histogram
	h.Observe(3 * time.Nanosecond) // single observation, bucket 1 ([2,4))
	single := h.Snapshot()
	cases := []struct {
		q    float64
		want time.Duration
	}{
		{-0.5, 0},
		{0, 0},
		{0.0001, 4}, // ceil-rank: any positive q maps to the only sample
		{0.5, 4},
		{1, 4},
		{1.5, 4}, // clamped to 1
	}
	for _, tc := range cases {
		if got := single.Quantile(tc.q); got != tc.want {
			t.Errorf("single.Quantile(%v) = %v, want %v", tc.q, got, tc.want)
		}
	}

	// 99 fast + 1 slow: a floor rank computes rank 99 at q=0.99 and a
	// ceil rank computes 99 too, but at q=1 the rank must be 100 — the
	// slow bucket — and never fall back to the fast bucket.
	var h2 Histogram
	for i := 0; i < 99; i++ {
		h2.Observe(time.Microsecond)
	}
	h2.Observe(time.Millisecond)
	s := h2.Snapshot()
	if got := s.Quantile(1); got < time.Millisecond {
		t.Fatalf("Quantile(1) = %v, want slow-bucket edge >= 1ms", got)
	}
	if got := s.Quantile(0.5); got > 2*time.Microsecond {
		t.Fatalf("Quantile(0.5) = %v, want fast-bucket edge", got)
	}
	// Ceil rank: q=0.995 of 100 samples is rank 100, the slow sample.
	if got := s.Quantile(0.995); got < time.Millisecond {
		t.Fatalf("Quantile(0.995) = %v, want slow-bucket edge (ceil rank)", got)
	}
}

// TestEventLogConcurrentSnapshot hammers Append against Snapshot from
// many goroutines. The mutex makes torn reads impossible; the assertions
// pin the invariants a reader relies on — snapshots are internally
// consistent (contiguous ascending seqs) — and the -race run (CI matrix
// at GOMAXPROCS 1 and 4) verifies the synchronization itself.
func TestEventLogConcurrentSnapshot(t *testing.T) {
	l := NewEventLog(16)
	const writers = 4
	const perWriter = 2000
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				l.Append("k", "d")
			}
		}()
	}
	var snaps int
	for {
		got := l.Snapshot()
		for i := 1; i < len(got); i++ {
			if got[i].Seq != got[i-1].Seq+1 {
				t.Fatalf("snapshot not contiguous: seq %d follows %d",
					got[i].Seq, got[i-1].Seq)
			}
		}
		snaps++
		if l.Seq() == writers*perWriter {
			break
		}
	}
	wg.Wait()
	if l.Seq() != writers*perWriter {
		t.Fatalf("seq = %d, want %d", l.Seq(), writers*perWriter)
	}
	if snaps == 0 {
		t.Fatal("no snapshots taken")
	}
}

// TestConcurrentPrimitives hammers every primitive from multiple
// goroutines; correctness of the totals plus a clean -race run is the
// point (the race matrix runs this at GOMAXPROCS 1 and 4).
func TestConcurrentPrimitives(t *testing.T) {
	const workers = 8
	const perWorker = 2000

	var c Counter
	var g Gauge
	var h Histogram
	l := NewEventLog(32)
	fr := NewFlightRecorder(256)
	fr.SetEnabled(true)

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				c.Inc()
				g.Inc()
				g.Dec()
				h.ObserveNS(int64(i%4096 + 1))
				if i%100 == 0 {
					l.Append("k", "d")
					fr.Record(fr.NextID(), StageQueued, FOpWrite, 1, ClassNone, 0)
				}
				if i%500 == 0 {
					_ = h.Snapshot()
					_ = l.Snapshot()
					_ = fr.Events()
				}
			}
		}(w)
	}
	wg.Wait()

	if got := c.Load(); got != workers*perWorker {
		t.Fatalf("counter = %d, want %d", got, workers*perWorker)
	}
	if got := g.Load(); got != 0 {
		t.Fatalf("gauge = %d, want 0", got)
	}
	s := h.Snapshot()
	if s.Count != workers*perWorker {
		t.Fatalf("hist count = %d, want %d", s.Count, workers*perWorker)
	}
	var bucketSum uint64
	for _, b := range s.Buckets {
		bucketSum += b
	}
	if bucketSum != s.Count {
		t.Fatalf("bucket sum %d != count %d", bucketSum, s.Count)
	}
	if got := l.Seq(); got != workers*(perWorker/100) {
		t.Fatalf("event seq = %d, want %d", got, workers*(perWorker/100))
	}
}

func BenchmarkCounterInc(b *testing.B) {
	var c Counter
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Inc()
	}
}

func BenchmarkHistogramObserve(b *testing.B) {
	var h Histogram
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.Observe(time.Duration(i&0xffff) + 1)
	}
}


func BenchmarkHistogramObserveParallel(b *testing.B) {
	var h Histogram
	b.ReportAllocs()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			h.Observe(time.Microsecond)
		}
	})
}

package obs

import (
	"testing"
	"time"
)

// synthetic trace: two writes (one merged into the other), one read with a
// transient retry, one sync folding into commit round 3.
func syntheticTrace() []FlightEvent {
	us := func(n int64) int64 { return n * int64(time.Microsecond) }
	return []FlightEvent{
		// write 1 (merge head): Q at 0, G at 10, D at 20, C at 120.
		{ReqID: 1, At: us(0), Stage: StageQueued, Op: FOpWrite, N: 8},
		{ReqID: 1, At: us(10), Stage: StageStaged, Op: FOpWrite, N: 8},
		{ReqID: 1, At: us(20), Stage: StageDispatch, Op: FOpWrite, N: 16, Aux: 1},
		{ReqID: 1, At: us(120), Stage: StageComplete, Op: FOpWrite, N: 8},
		// write 2: merged into 1.
		{ReqID: 2, At: us(2), Stage: StageQueued, Op: FOpWrite, N: 8},
		{ReqID: 2, At: us(10), Stage: StageStaged, Op: FOpWrite, N: 8},
		{ReqID: 2, At: us(15), Stage: StageMerged, Op: FOpWrite, N: 8, Aux: 1},
		{ReqID: 2, At: us(20), Stage: StageDispatch, Op: FOpWrite, N: 8, Aux: 1},
		{ReqID: 2, At: us(121), Stage: StageComplete, Op: FOpWrite, N: 8},
		// read: attempt 1 fails transient at 60, attempt 2 completes at 90.
		{ReqID: 3, At: us(5), Stage: StageQueued, Op: FOpRead, N: 4},
		{ReqID: 3, At: us(30), Stage: StageDispatch, Op: FOpRead, N: 4, Aux: 1},
		{ReqID: 3, At: us(60), Stage: StageComplete, Op: FOpRead, N: 4, Err: ClassTransient, Aux: 1},
		{ReqID: 3, At: us(70), Stage: StageDispatch, Op: FOpRead, N: 4, Aux: 2},
		{ReqID: 3, At: us(90), Stage: StageComplete, Op: FOpRead, N: 4},
		// sync joining commit round 3, flip folds 2 callers.
		{ReqID: 4, At: us(40), Stage: StageQueued, Op: FOpSync},
		{ReqID: 4, At: us(45), Stage: StageDispatch, Op: FOpSync, Aux: 1},
		{ReqID: 4, At: us(50), Stage: StageCommitJoin, Op: FOpSync, Aux: 3},
		{ReqID: 0, At: us(200), Stage: StageCommitFlip, Op: FOpSync, N: 2, Aux: 3},
		{ReqID: 4, At: us(205), Stage: StageComplete, Op: FOpSync},
	}
}

func TestAnalyzeLatencyAttribution(t *testing.T) {
	rep := Analyze(syntheticTrace())
	if rep.Requests != 4 || rep.Completed != 4 {
		t.Fatalf("requests=%d completed=%d, want 4/4", rep.Requests, rep.Completed)
	}

	byOp := map[string]OpLat{}
	for _, o := range rep.Ops {
		byOp[o.Op] = o
	}
	w := byOp["write"]
	if w.Q2C.Count != 2 {
		t.Fatalf("write Q2C count = %d, want 2", w.Q2C.Count)
	}
	// Write 1: Q2D = 20µs, D2C = 100µs, Q2C = 120µs.
	if w.Q2D.MinNS != 18*int64(time.Microsecond) { // write 2: 20-2
		t.Fatalf("write Q2D min = %v", time.Duration(w.Q2D.MinNS))
	}
	if w.Q2C.MaxNS != 120*int64(time.Microsecond) {
		t.Fatalf("write Q2C max = %v", time.Duration(w.Q2C.MaxNS))
	}
	// Read D2C must use the LAST dispatch (retry attempt): 90-70 = 20µs.
	r := byOp["read"]
	if r.D2C.MaxNS != 20*int64(time.Microsecond) {
		t.Fatalf("read D2C = %v, want 20µs (last attempt)", time.Duration(r.D2C.MaxNS))
	}
	if r.Q2C.MaxNS != 85*int64(time.Microsecond) {
		t.Fatalf("read Q2C = %v, want 85µs (spans both attempts)", time.Duration(r.Q2C.MaxNS))
	}

	if rep.Errors["transient"] != 1 {
		t.Fatalf("errors = %v, want one transient", rep.Errors)
	}
}

func TestAnalyzeMergeAndCommit(t *testing.T) {
	rep := Analyze(syntheticTrace())
	if rep.Merge.Chains != 1 || rep.Merge.Merged != 1 || rep.Merge.MaxChain != 2 {
		t.Fatalf("merge = %+v", rep.Merge)
	}
	if rep.Commits.Rounds != 1 || rep.Commits.Folded != 2 {
		t.Fatalf("commits = %+v", rep.Commits)
	}
	cr := rep.Commits.PerRound[0]
	if cr.Round != 3 || cr.Joins != 1 {
		t.Fatalf("round = %+v", cr)
	}
	// Door-hold wait: flip at 200µs, join at 50µs.
	if cr.DoorWait.MaxNS != 150*int64(time.Microsecond) {
		t.Fatalf("door wait = %v, want 150µs", time.Duration(cr.DoorWait.MaxNS))
	}
}

func TestAnalyzeTimeline(t *testing.T) {
	rep := Analyze(syntheticTrace())
	// 4 Q events before any D: max queued depth is 3 (writes 1,2 + read
	// queue before their dispatches land — sync queues at 40 after).
	if rep.QueueMax < 2 {
		t.Fatalf("queue max = %d, want >= 2", rep.QueueMax)
	}
	if rep.FlightMax < 2 {
		t.Fatalf("in-flight max = %d, want >= 2", rep.FlightMax)
	}
	if len(rep.Timeline) == 0 {
		t.Fatal("no timeline points")
	}
	for i := 1; i < len(rep.Timeline); i++ {
		if rep.Timeline[i].AtNS < rep.Timeline[i-1].AtNS {
			t.Fatal("timeline not time-ordered")
		}
	}
	if rep.QueueMean <= 0 {
		t.Fatalf("queue mean = %v, want > 0", rep.QueueMean)
	}
}

func TestAnalyzeEmptyAndDist(t *testing.T) {
	rep := Analyze(nil)
	if rep.Events != 0 || rep.Requests != 0 || len(rep.Ops) != 0 {
		t.Fatalf("empty analyze = %+v", rep)
	}
	if d := distOf(nil); d.Count != 0 || d.String() != "n=0" {
		t.Fatalf("empty dist = %+v", d)
	}
	d := distOf([]int64{100})
	if d.MinNS != 100 || d.MaxNS != 100 || d.P99NS != 100 || d.MeanNS != 100 {
		t.Fatalf("singleton dist = %+v", d)
	}
}

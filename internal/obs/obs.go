// Package obs is the telemetry substrate of the MobiCeal reproduction:
// lock-cheap metric primitives every layer of the stack shares — atomic
// counters and gauges, power-of-two-bucket latency histograms, a bounded
// ring-buffer event log, and an opt-in per-request trace recorder.
//
// Everything in this package is memory-only by design. MobiCeal's threat
// model is a multi-snapshot adversary who seizes the device; a seized
// device must carry no telemetry, so nothing here is ever persisted, and
// the whole surface resets with the process (the paper's mode-switch
// power-cycle discipline therefore also clears it). The second design rule
// is choke-point accounting: layers record public-facing metrics only at
// code paths that dummy noise and hidden traffic traverse identically, so
// the numbers are volume-blind by construction — an observer holding every
// public counter cannot separate hidden writes from the dummy-write
// distribution (see DESIGN.md "Observability" for the full argument, and
// the telemetry-deniability tests that pin it).
//
// Overhead discipline: Counter and Gauge are single atomic RMW operations,
// Histogram.Observe is one atomic add into a bucket indexed by bit length,
// and none of the hot-path primitives allocate. The event log and tracer
// take a mutex but sit on cold paths (mode changes) or behind an atomic
// enabled check (tracing is opt-in and costs one atomic load when off).
package obs

import (
	"sync"
	"sync/atomic"
	"time"
)

// Counter is a cumulative atomic counter. The zero value is ready to use.
type Counter struct{ v atomic.Uint64 }

// Inc adds 1.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Load returns the current value.
func (c *Counter) Load() uint64 { return c.v.Load() }

// Reset zeroes the counter. Owners of a metrics surface (the experiment
// harness re-baselining write amplification) use it; concurrent increments
// during a reset land on whichever side the race falls.
func (c *Counter) Reset() { c.v.Store(0) }

// Gauge is an instantaneous atomic level (queue depth, in-flight count,
// stage stock). The zero value is ready to use.
type Gauge struct{ v atomic.Int64 }

// Inc adds 1.
func (g *Gauge) Inc() { g.v.Add(1) }

// Dec subtracts 1.
func (g *Gauge) Dec() { g.v.Add(-1) }

// Add adds d (negative to subtract).
func (g *Gauge) Add(d int64) { g.v.Add(d) }

// Set stores v.
func (g *Gauge) Set(v int64) { g.v.Store(v) }

// Load returns the current level.
func (g *Gauge) Load() int64 { return g.v.Load() }

// epoch is the process-local monotonic base for span timestamps. Telemetry
// deliberately timestamps against process start, not wall time: the surface
// is memory-only and per-process, and a monotonic delta is all latency math
// needs.
var epoch = time.Now()

// NowNS returns a monotonic process-relative timestamp in nanoseconds. It
// is the clock the tracer and the scheduler's span timings share.
func NowNS() int64 { return int64(time.Since(epoch)) }

// Event is one entry of an EventLog: a state transition worth keeping
// (pool mode change, mount-time recovery, barrier failure). Events carry
// no volume identity — they describe the shared machinery only.
type Event struct {
	// Seq is the event's 1-based sequence number since process start.
	// The ring keeps only the newest entries; a Snapshot whose first
	// event has Seq > 1 has lost (Seq-1) older events.
	Seq uint64 `json:"seq"`
	// At is the process-relative time of the event (see NowNS).
	At time.Duration `json:"at_ns"`
	// Kind classifies the event ("mode", "recovery", ...).
	Kind string `json:"kind"`
	// Detail is the human-readable description.
	Detail string `json:"detail"`
}

// EventLog is a bounded ring buffer of Events. Appends past the capacity
// overwrite the oldest entry; the log never grows, so an arbitrarily long
// session holds a bounded telemetry footprint. The zero value is ready to
// use with DefaultEventLogSize capacity; NewEventLog picks another.
type EventLog struct {
	mu   sync.Mutex
	ring []Event
	seq  uint64
}

// DefaultEventLogSize is the ring capacity layers use unless they have a
// reason not to.
const DefaultEventLogSize = 128

// NewEventLog returns a ring of the given capacity (<=0 selects
// DefaultEventLogSize).
func NewEventLog(capacity int) *EventLog {
	if capacity <= 0 {
		capacity = DefaultEventLogSize
	}
	return &EventLog{ring: make([]Event, 0, capacity)}
}

// Append records an event. Safe for concurrent use.
func (l *EventLog) Append(kind, detail string) {
	at := time.Since(epoch)
	l.mu.Lock()
	if cap(l.ring) == 0 {
		l.ring = make([]Event, 0, DefaultEventLogSize)
	}
	l.seq++
	e := Event{Seq: l.seq, At: at, Kind: kind, Detail: detail}
	if len(l.ring) < cap(l.ring) {
		l.ring = append(l.ring, e)
	} else {
		l.ring[int((l.seq-1)%uint64(cap(l.ring)))] = e
	}
	l.mu.Unlock()
}

// Seq returns the total number of events ever appended.
func (l *EventLog) Seq() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.seq
}

// Snapshot returns the retained events, oldest first.
func (l *EventLog) Snapshot() []Event {
	l.mu.Lock()
	defer l.mu.Unlock()
	n := len(l.ring)
	out := make([]Event, 0, n)
	if n == 0 {
		return out
	}
	// The ring wraps at cap entries; the oldest retained event sits right
	// after the newest once the log has wrapped.
	start := 0
	if l.seq > uint64(cap(l.ring)) {
		start = int(l.seq % uint64(cap(l.ring)))
	}
	for i := 0; i < n; i++ {
		out = append(out, l.ring[(start+i)%n])
	}
	return out
}

package obs

import (
	"sync"
	"sync/atomic"
)

// Span is one recorded request: the submit→dispatch→complete timeline of
// an I/O through the scheduler, timestamped with NowNS. Spans carry the
// operation kind and size but deliberately no volume identity and no block
// addresses — a trace dump is as volume-blind as the counters.
type Span struct {
	// Seq is the span's 1-based sequence number since the tracer started.
	Seq uint64 `json:"seq"`
	// Op names the request kind ("read", "write", "sync", ...).
	Op string `json:"op"`
	// Blocks is the request size in blocks (0 for barriers).
	Blocks uint64 `json:"blocks"`
	// SubmitNS/DispatchNS/DoneNS are NowNS timestamps of the request's
	// life-cycle edges. DispatchNS is 0 for requests that never reached a
	// worker (purged while parked).
	SubmitNS   int64 `json:"submit_ns"`
	DispatchNS int64 `json:"dispatch_ns"`
	DoneNS     int64 `json:"done_ns"`
	// OK reports whether the request completed without error.
	OK bool `json:"ok"`
}

// Tracer is an opt-in bounded recorder of request Spans. It is disabled by
// default: the hot-path cost of a disabled tracer is a single atomic load
// (Enabled), and a nil *Tracer is a valid always-disabled tracer so call
// sites need no nil checks. When enabled it keeps the newest spans in a
// fixed ring, mirroring EventLog's bounded-footprint contract.
type Tracer struct {
	enabled atomic.Bool
	mu      sync.Mutex
	ring    []Span
	seq     uint64
}

// DefaultTraceSize is the span ring capacity unless overridden.
const DefaultTraceSize = 256

// NewTracer returns a disabled tracer with the given ring capacity (<=0
// selects DefaultTraceSize).
func NewTracer(capacity int) *Tracer {
	if capacity <= 0 {
		capacity = DefaultTraceSize
	}
	return &Tracer{ring: make([]Span, 0, capacity)}
}

// Enabled reports whether spans are being recorded. Nil-safe.
func (t *Tracer) Enabled() bool { return t != nil && t.enabled.Load() }

// SetEnabled turns recording on or off. Nil-safe no-op when t is nil.
func (t *Tracer) SetEnabled(on bool) {
	if t != nil {
		t.enabled.Store(on)
	}
}

// Record stores a span if the tracer is enabled. The span's Seq field is
// assigned by the tracer. Nil-safe.
func (t *Tracer) Record(s Span) {
	if !t.Enabled() {
		return
	}
	t.mu.Lock()
	t.seq++
	s.Seq = t.seq
	if len(t.ring) < cap(t.ring) {
		t.ring = append(t.ring, s)
	} else {
		t.ring[int((t.seq-1)%uint64(cap(t.ring)))] = s
	}
	t.mu.Unlock()
}

// Snapshot returns the retained spans, oldest first. Nil-safe (returns nil).
func (t *Tracer) Snapshot() []Span {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	n := len(t.ring)
	out := make([]Span, 0, n)
	if n == 0 {
		return out
	}
	start := 0
	if t.seq > uint64(cap(t.ring)) {
		start = int(t.seq % uint64(cap(t.ring)))
	}
	for i := 0; i < n; i++ {
		out = append(out, t.ring[(start+i)%n])
	}
	return out
}

package core

// Prometheus text exposition of the telemetry snapshot, hand-rendered on
// the standard library only (exposition format 0.0.4: `# HELP`/`# TYPE`
// lines, cumulative `le` buckets with an `+Inf` terminal, `_sum` in
// seconds, `_count`).
//
// The metric set is exactly the Telemetry struct — which is already
// deniability-safe by construction — re-keyed for scraping. The same rule
// carries over to labels: the only label ever emitted is the power-of-two
// histogram bucket edge `le` and the shard index on the per-shard gauges.
// There are no volume, hidden, dummy or real labels anywhere (pinned by
// TestPrometheusNoLeakyLabels).

import (
	"fmt"
	"io"
	"strings"

	"mobiceal/internal/obs"
	"mobiceal/internal/storage"
)

// WritePrometheus renders the snapshot in Prometheus text exposition
// format.
func WritePrometheus(w io.Writer, t Telemetry) error {
	pw := &promWriter{w: w}

	degraded := 0.0
	if t.Mode != "write" {
		degraded = 1
	}
	pw.gauge("mobiceal_pool_degraded", "Pool health: 0 in write mode, 1 once degraded.", degraded)
	pw.counter("mobiceal_pool_tx_id", "Last durable metadata transaction id.", float64(t.TxID))
	pw.gauge("mobiceal_pool_allocated_blocks", "Data blocks currently mapped.", float64(t.AllocatedBlocks))
	pw.gauge("mobiceal_pool_free_blocks", "Data blocks currently free.", float64(t.FreeBlocks))

	pw.counter("mobiceal_pool_provisions_total", "Physical blocks handed out by the allocator.", float64(t.Pool.Provisions))
	pw.counter("mobiceal_pool_releases_total", "Physical blocks released back to the pool.", float64(t.Pool.Releases))
	pw.histogram("mobiceal_pool_alloc_latency_seconds", "Latency of one allocator call.", t.Pool.AllocLat)
	pw.counter("mobiceal_pool_commit_calls_total", "Commit calls served.", float64(t.Pool.CommitCalls))
	pw.counter("mobiceal_pool_commit_flips_total", "Metadata superblock slot flips.", float64(t.Pool.CommitFlips))
	pw.histogram("mobiceal_pool_commit_total_latency_seconds", "Whole commit-round latency.", t.Pool.CommitTotalLat)
	pw.gauge("mobiceal_pool_noise_staged", "Pre-generated noise payloads staged for writes.", float64(t.Pool.NoiseStaged))

	for i, sh := range t.Pool.Shards {
		lbl := fmt.Sprintf(`shard="%d"`, i)
		pw.labeledGauge("mobiceal_pool_shard_free_blocks", "Free blocks of one allocation shard.", lbl, float64(sh.Free), i == 0)
	}
	for i, sh := range t.Pool.Shards {
		lbl := fmt.Sprintf(`shard="%d"`, i)
		pw.labeledCounter("mobiceal_pool_shard_steals_total", "Cross-shard allocations served by this shard.", lbl, float64(sh.Steals), i == 0)
	}

	pw.counter("mobiceal_io_submitted_total", "Requests submitted to the scheduler.", float64(t.IO.Submitted))
	pw.counter("mobiceal_io_completed_total", "Requests completed by the scheduler.", float64(t.IO.Completed))
	pw.gauge("mobiceal_io_queue_depth", "Requests waiting in submission queues.", float64(t.IO.QueueDepth))
	pw.gauge("mobiceal_io_in_flight", "Requests at the device right now.", float64(t.IO.InFlight))
	pw.gauge("mobiceal_io_window_max", "Per-queue dispatch window size (1 = serial dispatch).", float64(t.IO.WindowMax))
	pw.gauge("mobiceal_io_window_occupancy", "Coalesced runs executing inside dispatch windows.", float64(t.IO.WindowOccupancy))
	pw.counter("mobiceal_io_window_stalls_total", "Run submissions that waited for a window slot or an overlapping extent.", float64(t.IO.WindowStalls))
	pw.counter("mobiceal_io_retries_total", "Transient-fault retries fired.", float64(t.IO.Retries))
	pw.counter("mobiceal_io_failures_total", "Requests failed hard.", float64(t.IO.Failures))
	pw.histogram("mobiceal_io_queue_latency_seconds", "Submit-to-dispatch latency.", t.IO.QueueLat)
	pw.histogram("mobiceal_io_service_latency_seconds", "Dispatch-to-complete latency.", t.IO.ServiceLat)
	pw.histogram("mobiceal_io_total_latency_seconds", "Submit-to-complete latency.", t.IO.TotalLat)

	pw.devMetrics("data", t.Data)
	pw.devMetrics("meta", t.Meta)

	if f := t.File; f != nil {
		direct := 0.0
		if f.Direct {
			direct = 1
		}
		pw.gauge("mobiceal_file_direct_mode", "1 when the image is open O_DIRECT, 0 buffered.", direct)
		pw.counter("mobiceal_file_preadv_total", "Vectored read syscalls issued to the image.", float64(f.PreadvCalls))
		pw.counter("mobiceal_file_pwritev_total", "Vectored write syscalls issued to the image.", float64(f.PwritevCalls))
		pw.counter("mobiceal_file_read_segs_total", "Segments carried by vectored reads.", float64(f.ReadSegs))
		pw.counter("mobiceal_file_write_segs_total", "Segments carried by vectored writes.", float64(f.WriteSegs))
		pw.counter("mobiceal_file_eintr_retries_total", "Transfers re-issued after EINTR.", float64(f.EintrRetries))
		pw.counter("mobiceal_file_short_transfers_total", "Transfers continued after a short count.", float64(f.ShortTransfers))
		pw.counter("mobiceal_file_bounce_copies_total", "Direct-mode transfers bounced through the aligned pool.", float64(f.BounceCopies))
	}
	return pw.err
}

// promWriter accumulates the first write error so the render code stays
// linear.
type promWriter struct {
	w   io.Writer
	err error
}

func (p *promWriter) printf(format string, args ...any) {
	if p.err == nil {
		_, p.err = fmt.Fprintf(p.w, format, args...)
	}
}

func (p *promWriter) head(name, help, typ string) {
	p.printf("# HELP %s %s\n# TYPE %s %s\n", name, help, name, typ)
}

func (p *promWriter) counter(name, help string, v float64) {
	p.head(name, help, "counter")
	p.printf("%s %g\n", name, v)
}

func (p *promWriter) gauge(name, help string, v float64) {
	p.head(name, help, "gauge")
	p.printf("%s %g\n", name, v)
}

func (p *promWriter) labeledGauge(name, help, label string, v float64, first bool) {
	if first {
		p.head(name, help, "gauge")
	}
	p.printf("%s{%s} %g\n", name, label, v)
}

func (p *promWriter) labeledCounter(name, help, label string, v float64, first bool) {
	if first {
		p.head(name, help, "counter")
	}
	p.printf("%s{%s} %g\n", name, label, v)
}

// histogram renders the power-of-two nanosecond buckets as cumulative
// `le` edges in seconds.
func (p *promWriter) histogram(name, help string, h obs.HistSnapshot) {
	p.head(name, help, "histogram")
	var cum uint64
	for i, c := range h.Buckets {
		cum += c
		// Upper edge of bucket i is 2^(i+1) ns, exclusive; Prometheus
		// buckets are inclusive upper bounds, close enough for
		// power-of-two resolution.
		edge := float64(int64(1)<<uint(i+1)) / 1e9
		p.printf("%s_bucket{le=%q} %d\n", name, trimFloat(edge), cum)
	}
	p.printf("%s_bucket{le=\"+Inf\"} %d\n", name, h.Count)
	p.printf("%s_sum %g\n", name, float64(h.SumNS)/1e9)
	p.printf("%s_count %d\n", name, h.Count)
}

func (p *promWriter) devMetrics(region string, d storage.DeviceSnapshot) {
	pre := "mobiceal_dev_" + region
	p.counter(pre+"_read_blocks_total", "Blocks read from the "+region+" region.", float64(d.ReadBlocks))
	p.counter(pre+"_write_blocks_total", "Blocks written to the "+region+" region.", float64(d.WriteBlocks))
	p.counter(pre+"_read_bytes_total", "Bytes read from the "+region+" region.", float64(d.BytesRead))
	p.counter(pre+"_write_bytes_total", "Bytes written to the "+region+" region.", float64(d.BytesWrite))
	p.counter(pre+"_syncs_total", "Sync calls on the "+region+" region.", float64(d.Syncs))
	p.histogram(pre+"_write_latency_seconds", "Write latency of the "+region+" region.", d.WriteLat)
}

// trimFloat formats a bucket edge without trailing zeros ("1.6e-08"
// style is fine; "0.000000002" is not).
func trimFloat(f float64) string {
	s := fmt.Sprintf("%g", f)
	return strings.TrimSuffix(s, ".0")
}

package core

import (
	"crypto/sha256"
	"errors"
	"fmt"
	"sync"
	"time"

	"mobiceal/internal/dm"
	"mobiceal/internal/ioq"
	"mobiceal/internal/obs"
	"mobiceal/internal/prng"
	"mobiceal/internal/storage"
	"mobiceal/internal/thinp"
	"mobiceal/internal/vclock"
	"mobiceal/internal/xcrypto"
)

// Core errors.
var (
	// ErrBadPassword reports a password that opens no volume.
	ErrBadPassword = errors.New("core: password does not open any volume")
	// ErrTooSmall reports a device too small for the MobiCeal layout.
	ErrTooSmall = errors.New("core: device too small")
	// ErrBadConfig reports an invalid configuration.
	ErrBadConfig = errors.New("core: invalid configuration")
	// ErrIndexCollision reports hidden passwords whose derived volume
	// indexes collide even after salt retries.
	ErrIndexCollision = errors.New("core: hidden volume index collision")
)

// Config configures Setup and Open.
type Config struct {
	// NumVolumes is n, the total number of virtual volumes (public +
	// hidden + dummy). Default 8.
	NumVolumes int
	// Lambda is the exponential rate for dummy-write sizes. Default 1
	// (the paper's example value).
	Lambda float64
	// X is the dummy-trigger constant x. Default 50 (the paper's example).
	X int
	// KDFIter is the PBKDF2 iteration count. Default 2000 (Android 4.x).
	KDFIter int
	// Entropy supplies keys, salts and dummy noise. Default: system CSPRNG.
	Entropy prng.Entropy
	// Seed drives simulation randomness (allocator, policy) for
	// reproducible experiments. Default 0 means derive from Entropy.
	Seed uint64
	// SeedSet marks Seed as intentional even when zero.
	SeedSet bool
	// Meter optionally charges virtual time for I/O-path layers.
	Meter *vclock.Meter
	// SequentialAlloc replaces the random allocator with the stock
	// sequential one. FOR ABLATION EXPERIMENTS ONLY: it reintroduces the
	// layout leak of Sec. IV-B that the adversary's run detector exploits.
	SequentialAlloc bool
	// PolicyRefreshEvery is the number of provisioning decisions between
	// stored_rand refreshes, standing in for the prototype's one-hour
	// jiffies capture at simulation scale. Default 256.
	PolicyRefreshEvery int
	// AsyncWorkers is the worker count of the system's I/O scheduler
	// (Volume.SubmitRead/SubmitWrite/Flush). 0 selects the scheduler's
	// default (max(2, GOMAXPROCS)).
	AsyncWorkers int
	// MaxInFlight bounds each volume queue's dispatch window: how many
	// coalesced runs may execute against the device concurrently. 0 (the
	// default) keeps the serial dispatch of earlier versions; values > 1
	// let queue depth reach backends with real concurrency (a FileDevice,
	// especially in direct mode). See ioq.Options.MaxInFlight.
	MaxInFlight int
	// NoSpaceTimeout bounds how long a write needing provisioning queues
	// while the pool is out of data space before failing — dm-thin's
	// no_space_timeout. 0 (the default) fails fast.
	NoSpaceTimeout time.Duration
	// Retry tunes the scheduler's transient-fault retry policy for the
	// async volume API. The zero value selects the default policy (3
	// attempts, exponential backoff); MaxAttempts < 0 disables retry.
	Retry ioq.RetryPolicy
}

func (c *Config) fill() error {
	if c.NumVolumes == 0 {
		c.NumVolumes = 8
	}
	if c.NumVolumes < 2 {
		return fmt.Errorf("%w: need at least 2 volumes, got %d", ErrBadConfig, c.NumVolumes)
	}
	if c.Lambda == 0 {
		c.Lambda = 1
	}
	if c.Lambda < 0 {
		return fmt.Errorf("%w: negative lambda", ErrBadConfig)
	}
	if c.X == 0 {
		c.X = 50
	}
	if c.X < 0 {
		return fmt.Errorf("%w: negative x", ErrBadConfig)
	}
	if c.KDFIter == 0 {
		c.KDFIter = xcrypto.DefaultKDFIter
	}
	if c.Entropy == nil {
		c.Entropy = prng.SystemEntropy()
	}
	if !c.SeedSet && c.Seed == 0 {
		seedBytes, err := prng.Bytes(c.Entropy, 8)
		if err != nil {
			return fmt.Errorf("core: seeding simulation source: %w", err)
		}
		for i, b := range seedBytes {
			c.Seed |= uint64(b) << (8 * uint(i))
		}
	}
	return nil
}

// PublicVolumeID is the thin id of the public volume; the paper fixes
// V1 as public (Sec. IV-C).
const PublicVolumeID = 1

// verifierMagicLen is the byte length of the password verifier stored at
// virtual block 0 of each non-public volume.
const verifierHashLen = sha256.Size

// System is an initialized MobiCeal device: the pool, the footer, and the
// dummy-write machinery. Obtain one with Setup (fresh device) or Open
// (existing device).
type System struct {
	dev    storage.Device
	cfg    Config
	footer *xcrypto.Footer
	pool   *thinp.Pool
	policy *StoredRandPolicy

	// asyncOnce lazily starts the shared I/O scheduler behind the
	// volumes' Submit*/Flush API (see async.go); queues shares one
	// submission queue per volume id across repeated opens.
	asyncOnce sync.Once
	sched     *ioq.Scheduler
	queueMu   sync.Mutex
	queues    map[int]*ioq.VolumeQueue

	// dataStats and metaStats are the accounting wraps buildPool installs
	// around the pool's region devices; Telemetry snapshots them. They sit
	// below every volume, so their numbers aggregate all traffic without
	// attributing it (telemetry.go).
	dataStats *storage.StatsDevice
	metaStats *storage.StatsDevice

	// flight is the request-lifecycle flight recorder: a bounded,
	// memory-only ring of causal events the ioq/thinp/storage layers
	// record into when enabled. Off by default; disabled cost is one
	// atomic load per choke point. Deniability-safe by the same argument
	// as the rest of the telemetry surface — every stage hook sits on a
	// choke point real and dummy traffic traverse identically.
	flight *obs.FlightRecorder

	metaBlocks uint64
	dataBlocks uint64
}

// LayoutInfo is the Fig. 3 region split of a MobiCeal device. It is public
// knowledge: the adversary is assumed to know the design and the metadata
// location (Sec. IV-B).
type LayoutInfo struct {
	MetaBlocks   uint64
	DataBlocks   uint64
	FooterBlocks uint64
}

// Layout computes the region split for a device the way Setup does, so the
// adversary toolkit can locate pool metadata on a seized image.
func Layout(dev storage.Device) (LayoutInfo, error) {
	m, d, f, err := layout(dev)
	if err != nil {
		return LayoutInfo{}, err
	}
	return LayoutInfo{MetaBlocks: m, DataBlocks: d, FooterBlocks: f}, nil
}

// layout computes the Fig. 3 split for a device: metadata region, data
// region, footer region (in blocks).
func layout(dev storage.Device) (metaBlocks, dataBlocks, footerBlocks uint64, err error) {
	bs := dev.BlockSize()
	total := dev.NumBlocks()
	footerBlocks = xcrypto.FooterBlocks(bs)
	// First pass over-estimates metadata need using the whole device size.
	metaBlocks = thinp.MetaBlocksNeeded(total, bs)
	if metaBlocks+footerBlocks+8 > total {
		return 0, 0, 0, fmt.Errorf("%w: %d blocks", ErrTooSmall, total)
	}
	dataBlocks = total - metaBlocks - footerBlocks
	return metaBlocks, dataBlocks, footerBlocks, nil
}

// Setup initializes a fresh MobiCeal device: crypto footer wrapped by the
// decoy password, thin pool with random allocation and the dummy-write
// policy, n virtual volumes, hidden-password verifiers, and dummy-volume
// cover blocks. Existing contents are destroyed.
//
// hiddenPasswords may be empty (encryption without deniability, the paper's
// first user flow) or carry one password per desired hidden volume
// (multi-level deniability, Sec. IV-C).
func Setup(dev storage.Device, cfg Config, decoyPassword string, hiddenPasswords []string) (*System, error) {
	if err := cfg.fill(); err != nil {
		return nil, err
	}
	if len(hiddenPasswords) > cfg.NumVolumes-1 {
		return nil, fmt.Errorf("%w: %d hidden passwords for %d volumes",
			ErrBadConfig, len(hiddenPasswords), cfg.NumVolumes)
	}
	metaBlocks, dataBlocks, _, err := layout(dev)
	if err != nil {
		return nil, err
	}

	// Generate a footer whose PDE salt gives the hidden passwords
	// collision-free volume indexes; the paper re-salts on collision
	// (Sec. IV-C "If different hidden volumes result in the same k,
	// another random salt will be chosen").
	var footer *xcrypto.Footer
	const saltRetries = 64
	for try := 0; ; try++ {
		f, _, err := xcrypto.NewFooter(cfg.Entropy, decoyPassword, cfg.NumVolumes, cfg.KDFIter)
		if err != nil {
			return nil, fmt.Errorf("core: creating footer: %w", err)
		}
		if !hiddenIndexCollision(f, hiddenPasswords, decoyPassword) {
			footer = f
			break
		}
		if try == saltRetries {
			return nil, fmt.Errorf("%w after %d salt retries", ErrIndexCollision, saltRetries)
		}
	}
	if err := xcrypto.WriteFooter(dev, footer); err != nil {
		return nil, fmt.Errorf("core: writing footer: %w", err)
	}

	sys := &System{
		dev:        dev,
		cfg:        cfg,
		footer:     footer,
		metaBlocks: metaBlocks,
		dataBlocks: dataBlocks,
	}
	if err := sys.buildPool(true); err != nil {
		return nil, err
	}

	// Create the n virtual volumes, each thin-overcommitted to the full
	// data size.
	for id := 1; id <= cfg.NumVolumes; id++ {
		if err := sys.pool.CreateThin(id, dataBlocks); err != nil {
			return nil, fmt.Errorf("core: creating volume %d: %w", id, err)
		}
	}

	// Install verifiers on hidden volumes and cover blocks on dummy
	// volumes so every non-public volume has exactly one block mapped at
	// virtual block 0 after setup — indistinguishable states.
	hiddenIDs := make(map[int]bool, len(hiddenPasswords))
	for _, pwd := range hiddenPasswords {
		id := footer.HiddenIndex(pwd)
		hiddenIDs[id] = true
		if err := sys.writeVerifier(id, pwd); err != nil {
			return nil, err
		}
	}
	noise := make([]byte, dev.BlockSize())
	for id := 2; id <= cfg.NumVolumes; id++ {
		if hiddenIDs[id] {
			continue
		}
		if err := xcrypto.FillNoise(cfg.Entropy, noise); err != nil {
			return nil, fmt.Errorf("core: dummy cover noise: %w", err)
		}
		thin, err := sys.pool.Thin(id)
		if err != nil {
			return nil, err
		}
		if err := thin.WriteBlock(0, noise); err != nil {
			return nil, fmt.Errorf("core: writing dummy cover block: %w", err)
		}
	}
	if err := sys.pool.Commit(); err != nil {
		return nil, fmt.Errorf("core: committing setup: %w", err)
	}
	return sys, nil
}

func hiddenIndexCollision(f *xcrypto.Footer, hiddenPasswords []string, decoyPassword string) bool {
	seen := make(map[int]bool, len(hiddenPasswords))
	for _, pwd := range hiddenPasswords {
		if pwd == decoyPassword {
			return true
		}
		k := f.HiddenIndex(pwd)
		if seen[k] {
			return true
		}
		seen[k] = true
	}
	return false
}

// Open loads an existing MobiCeal device. Opening performs mount-time
// crash recovery: the thin pool's A/B metadata is validated and the newest
// durable transaction selected, so a device that lost power mid-commit
// opens to exactly its pre- or post-commit state (Recovery reports which).
func Open(dev storage.Device, cfg Config) (*System, error) {
	if err := cfg.fill(); err != nil {
		return nil, err
	}
	footer, err := xcrypto.ReadFooter(dev)
	if err != nil {
		return nil, fmt.Errorf("core: reading footer: %w", err)
	}
	cfg.NumVolumes = int(footer.NumVolumes)
	metaBlocks, dataBlocks, _, err := layout(dev)
	if err != nil {
		return nil, err
	}
	sys := &System{
		dev:        dev,
		cfg:        cfg,
		footer:     footer,
		metaBlocks: metaBlocks,
		dataBlocks: dataBlocks,
	}
	if err := sys.buildPool(false); err != nil {
		return nil, err
	}
	return sys, nil
}

// buildPool constructs (create=true) or loads the thin pool over the
// metadata/data regions.
func (s *System) buildPool(create bool) error {
	metaDev, err := storage.NewSliceDevice(s.dev, 0, s.metaBlocks)
	if err != nil {
		return fmt.Errorf("core: metadata region: %w", err)
	}
	dataDev, err := storage.NewSliceDevice(s.dev, s.metaBlocks, s.dataBlocks)
	if err != nil {
		return fmt.Errorf("core: data region: %w", err)
	}
	// Both regions get an accounting wrap for the telemetry surface. The
	// cost device (virtual-testbed timing) stays outermost, seeing exactly
	// the operations it saw before the stats wrap existed, so `*_virt`
	// metrics are untouched by instrumentation.
	s.metaStats = storage.NewStatsDevice(metaDev)
	s.dataStats = storage.NewStatsDevice(dataDev)
	// The flight recorder sits across the whole stack: ioq records
	// queue/dispatch/complete, thinp records map/provision/commit stages,
	// and the data-region stats wrap records the leaf device op. Created
	// disabled; `mobiceal trace` or FlightRecorder().Enable() turns it on.
	s.flight = obs.NewFlightRecorder(obs.DefaultFlightEvents)
	s.dataStats.SetFlightRecorder(s.flight)
	var meta storage.Device = s.metaStats
	var data storage.Device = s.dataStats
	if s.cfg.Meter != nil {
		data = vclock.NewCostDevice(data, s.cfg.Meter)
	}
	src := prng.NewSource(s.cfg.Seed)
	refreshEvery := s.cfg.PolicyRefreshEvery
	if refreshEvery == 0 {
		refreshEvery = 256
	}
	s.policy = NewStoredRandPolicy(PolicyConfig{
		X:            s.cfg.X,
		Lambda:       s.cfg.Lambda,
		NumVolumes:   s.cfg.NumVolumes,
		PublicID:     PublicVolumeID,
		RefreshEvery: refreshEvery,
		Src:          prng.NewSource(src.Uint64()),
	})
	var allocator thinp.Allocator = thinp.NewRandomAllocator(prng.NewSource(src.Uint64()))
	if s.cfg.SequentialAlloc {
		allocator = thinp.NewSequentialAllocator()
	}
	opts := thinp.Options{
		Allocator:      allocator,
		Policy:         s.policy,
		Entropy:        s.cfg.Entropy,
		DummySrc:       prng.NewSource(src.Uint64()),
		Meter:          s.cfg.Meter,
		NoSpaceTimeout: s.cfg.NoSpaceTimeout,
		Flight:         s.flight,
	}
	if create {
		s.pool, err = thinp.CreatePool(data, meta, opts)
	} else {
		s.pool, err = thinp.OpenPool(data, meta, opts)
	}
	if err != nil {
		return fmt.Errorf("core: thin pool: %w", err)
	}
	return nil
}

// Pool exposes the underlying thin pool (read-mostly: experiments and the
// Android layer inspect allocation state through it).
func (s *System) Pool() *thinp.Pool { return s.pool }

// FlightRecorder returns the system's request-lifecycle flight recorder.
// It is created disabled; call Enable on it (or use `mobiceal trace`) to
// start recording. Never nil on a built system.
func (s *System) FlightRecorder() *obs.FlightRecorder { return s.flight }

// Footer returns the crypto footer.
func (s *System) Footer() *xcrypto.Footer { return s.footer }

// Policy returns the dummy-write policy for stats and refresh control.
func (s *System) Policy() *StoredRandPolicy { return s.policy }

// Config returns the effective configuration.
func (s *System) Config() Config { return s.cfg }

// NumVolumes returns n.
func (s *System) NumVolumes() int { return s.cfg.NumVolumes }

// DataBlocks returns the size of the data region in blocks.
func (s *System) DataBlocks() uint64 { return s.dataBlocks }

// Commit persists pool metadata.
func (s *System) Commit() error { return s.pool.Commit() }

// Health is a snapshot of the system's degradation state: the thin pool's
// health-ladder mode with the reason for the last degradation, and the I/O
// scheduler's fault counters (retries fired, requests recovered by retry,
// deadline timeouts, hard failures, failed durability barriers).
type Health struct {
	// Mode is the pool health mode: thinp.PoolWrite in normal operation,
	// escalating through OutOfDataSpace and ReadOnly to Fail.
	Mode thinp.PoolMode
	// Reason explains the last degradation; empty while Mode is PoolWrite.
	Reason string
	// IO is the scheduler's cumulative fault accounting.
	IO ioq.Stats
}

// Healthy reports whether the system is fully operational.
func (h Health) Healthy() bool { return h.Mode == thinp.PoolWrite }

// Health reports the system's current degradation state. Callers poll it
// after I/O errors to distinguish a transient hiccup (mode still Write,
// recoveries visible in IO.Recovered) from a degraded pool that needs
// reclaim (OutOfDataSpace), a remount (ReadOnly) or is lost until reopen
// (Fail).
func (s *System) Health() Health {
	mode, reason := s.pool.Status()
	return Health{Mode: mode, Reason: reason, IO: s.Scheduler().Stats()}
}

// Recovery reports the mount-time A/B slot selection the pool performed
// when this System was opened — which metadata slot won, at which
// transaction, and whether an interrupted commit was rolled back. The boot
// flow logs it; tests assert on it.
func (s *System) Recovery() thinp.Recovery { return s.pool.Recovery() }

// cipherFor builds the XTS sector cipher for a derived key, using the
// Android dm-crypt default parameters (aes-xts-plain64, 256-bit key).
func cipherFor(key []byte) (xcrypto.SectorCipher, error) {
	c, err := xcrypto.NewXTSPlain64(key)
	if err != nil {
		return nil, fmt.Errorf("core: building volume cipher: %w", err)
	}
	return c, nil
}

// verifierPlain builds the plaintext verifier block for a password: the
// SHA-256 of the password followed by zeros. Encrypted under the volume
// key it is indistinguishable from dummy noise; decrypted with the right
// key it authenticates the password (paper Sec. V-B "Switching to the
// Hidden Volume").
func verifierPlain(password string, blockSize int) []byte {
	out := make([]byte, blockSize)
	h := sha256.Sum256([]byte(password))
	copy(out, h[:])
	return out
}

// writeVerifier installs the password verifier at virtual block 0 of
// volume id, encrypted under the password-derived key.
func (s *System) writeVerifier(id int, password string) error {
	key, err := s.footer.DeriveKey(password)
	if err != nil {
		return fmt.Errorf("core: deriving verifier key: %w", err)
	}
	cipher, err := cipherFor(key)
	if err != nil {
		return err
	}
	thin, err := s.pool.Thin(id)
	if err != nil {
		return err
	}
	crypt := dm.NewCrypt(thin, cipher, s.cfg.Meter)
	if err := crypt.WriteBlock(0, verifierPlain(password, s.dev.BlockSize())); err != nil {
		return fmt.Errorf("core: writing verifier: %w", err)
	}
	return nil
}

// checkVerifier reports whether password opens volume id.
func (s *System) checkVerifier(id int, password string) (bool, error) {
	key, err := s.footer.DeriveKey(password)
	if err != nil {
		return false, err
	}
	cipher, err := cipherFor(key)
	if err != nil {
		return false, err
	}
	thin, err := s.pool.Thin(id)
	if err != nil {
		return false, err
	}
	mapped, err := s.pool.MappedBlocks(id)
	if err != nil {
		return false, err
	}
	if mapped == 0 {
		return false, nil
	}
	crypt := dm.NewCrypt(thin, cipher, s.cfg.Meter)
	buf := make([]byte, s.dev.BlockSize())
	if err := crypt.ReadBlock(0, buf); err != nil {
		return false, fmt.Errorf("core: reading verifier: %w", err)
	}
	want := verifierPlain(password, s.dev.BlockSize())
	for i := 0; i < verifierHashLen; i++ {
		if buf[i] != want[i] {
			return false, nil
		}
	}
	return true, nil
}

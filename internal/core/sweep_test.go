// Package core_test (external): the adversary package imports core for its
// game harness, so the sweep — which needs both — cannot live inside the
// core test package without a cycle.
package core_test

import (
	"bytes"
	"errors"
	"fmt"
	"testing"

	"mobiceal/internal/adversary"
	"mobiceal/internal/core"
	"mobiceal/internal/prng"
	"mobiceal/internal/storage"
	"mobiceal/internal/thinp"
)

const blockSize = 4096

func testConfig(seed uint64) core.Config {
	return core.Config{
		NumVolumes: 6,
		Lambda:     1,
		X:          50,
		KDFIter:    16,
		Entropy:    prng.NewSeededEntropy(seed),
		Seed:       seed,
		SeedSet:    true,
	}
}

// The core-level fault sweep: a full MobiCeal system (crypto footer, thin
// pool, async scheduler) over a FlakyDevice, a recorded post-setup workload,
// and one injected fault per device-op index of that workload. A transient
// fault at ANY index must be invisible to the caller (ioq retry, commit
// retry, sync retry); a permanent fault must surface, leave the pool in a
// defined mode, keep every committed byte readable, and a reopen must fully
// recover — with the multi-snapshot adversary finding no plaintext-looking
// change in the fault epoch and a spotless post-recovery epoch.

const (
	sweepSeed         = 42
	sweepHiddenBase   = 10 // first hidden-payload virtual block
	sweepHiddenBlocks = 4
	sweepBatches      = 3
	sweepBatchBlocks  = 4
)

func sweepHiddenBlockData(b int) []byte {
	buf := make([]byte, blockSize)
	for i := range buf {
		buf[i] = byte(0xA0 + b)
	}
	return buf
}

// newFaultSystem builds a System over a FlakyDevice-wrapped MemDevice and
// makes a hidden payload durable before any fault is armed. Every call is
// bit-identical: seeded entropy, seeded simulation source, no concurrency
// before the workload.
func newFaultSystem(t *testing.T) (*core.System, *storage.FlakyDevice, *storage.MemDevice) {
	t.Helper()
	inner := storage.NewMemDevice(blockSize, 4096)
	flaky := storage.NewFlakyDevice(inner, storage.FlakyOptions{Seed: 7})
	cfg := testConfig(sweepSeed)
	cfg.AsyncWorkers = 2
	sys, err := core.Setup(flaky, cfg, "decoy-pass", []string{"hidden-pass"})
	if err != nil {
		t.Fatalf("Setup: %v", err)
	}
	hid, err := sys.OpenHidden("hidden-pass")
	if err != nil {
		t.Fatalf("OpenHidden: %v", err)
	}
	for b := 0; b < sweepHiddenBlocks; b++ {
		if err := hid.Device().WriteBlock(uint64(sweepHiddenBase+b), sweepHiddenBlockData(b)); err != nil {
			t.Fatalf("hidden payload block %d: %v", b, err)
		}
	}
	if err := sys.Commit(); err != nil {
		t.Fatalf("committing hidden payload: %v", err)
	}
	return sys, flaky, inner
}

// runCoreWorkload drives the recorded workload through the asynchronous
// volume API: three public batch writes, then the system-wide durability
// barrier. Futures are waited one by one so the device-op stream stays
// deterministic across runs.
func runCoreWorkload(sys *core.System) error {
	pub, err := sys.OpenPublic("decoy-pass")
	if err != nil {
		return err
	}
	buf := make([]byte, sweepBatchBlocks*blockSize)
	for batch := 0; batch < sweepBatches; batch++ {
		for i := range buf {
			buf[i] = byte(0x40 + batch)
		}
		if err := pub.SubmitWrite(uint64(batch*sweepBatchBlocks), buf).Wait(); err != nil {
			return err
		}
	}
	return sys.FlushAll()
}

// verifyHiddenPayload asserts the durable hidden payload survived: reopen
// the device, unlock the hidden volume, compare every byte.
func verifyHiddenPayload(t *testing.T, label string, dev storage.Device) *core.System {
	t.Helper()
	sys, err := core.Open(dev, testConfig(sweepSeed))
	if err != nil {
		t.Fatalf("%s: reopen: %v", label, err)
	}
	if mode := sys.Health().Mode; mode != thinp.PoolWrite {
		t.Fatalf("%s: reopened pool mode = %v, want write", label, mode)
	}
	hid, err := sys.OpenHidden("hidden-pass")
	if err != nil {
		t.Fatalf("%s: reopen OpenHidden: %v", label, err)
	}
	got := make([]byte, blockSize)
	for b := 0; b < sweepHiddenBlocks; b++ {
		if err := hid.Device().ReadBlock(uint64(sweepHiddenBase+b), got); err != nil {
			t.Fatalf("%s: reading hidden block %d: %v", label, b, err)
		}
		if !bytes.Equal(got, sweepHiddenBlockData(b)) {
			t.Fatalf("%s: hidden block %d corrupted after recovery", label, b)
		}
	}
	return sys
}

// analyzeEpoch runs the multi-snapshot adversary over one epoch of the
// inner device.
func analyzeEpoch(t *testing.T, label string, dev storage.Device, s0, s1 *storage.Snapshot) *adversary.DiffReport {
	t.Helper()
	info, err := core.Layout(dev)
	if err != nil {
		t.Fatalf("%s: layout: %v", label, err)
	}
	report, err := adversary.AnalyzeDiff(s0, s1, info.MetaBlocks, info.DataBlocks, core.PublicVolumeID)
	if err != nil {
		t.Fatalf("%s: adversary analysis: %v", label, err)
	}
	return report
}

// TestCoreFaultSweep is the end-to-end fault sweep over the whole stack.
func TestCoreFaultSweep(t *testing.T) {
	// Baseline run: record the workload's device-op window with no faults.
	sys, flaky, inner := newFaultSystem(t)
	baseWrites := flaky.OpCount(storage.FlakyWrite)
	baseSyncs := flaky.OpCount(storage.FlakySync)
	s0 := inner.Snapshot()
	if err := runCoreWorkload(sys); err != nil {
		t.Fatalf("baseline workload: %v", err)
	}
	nWrites := flaky.OpCount(storage.FlakyWrite)
	nSyncs := flaky.OpCount(storage.FlakySync)
	if err := sys.Close(); err != nil {
		t.Fatalf("baseline close: %v", err)
	}
	report := analyzeEpoch(t, "baseline", inner, s0, inner.Snapshot())
	if len(report.Unaccountable) != 0 || report.NonRandomChanged != 0 {
		t.Fatalf("baseline epoch not deniable: %+v", report)
	}
	if nWrites <= baseWrites || nSyncs <= baseSyncs {
		t.Fatalf("workload recorded no ops: writes [%d,%d) syncs [%d,%d)",
			baseWrites, nWrites, baseSyncs, nSyncs)
	}
	t.Logf("sweep window: %d write ops, %d sync ops",
		nWrites-baseWrites, nSyncs-baseSyncs)

	// The sweep window can widen under -race GOMAXPROCS=1; stride-sample
	// with -short to keep the CI soak budget.
	stride := uint64(1)
	if testing.Short() {
		stride = 3
	}

	type point struct {
		op  storage.FlakyOp
		lo  uint64
		hi  uint64
		cls error
	}
	sweeps := []point{
		{storage.FlakyWrite, baseWrites, nWrites, storage.ErrTransient},
		{storage.FlakyWrite, baseWrites, nWrites, storage.ErrMedium},
		{storage.FlakySync, baseSyncs, nSyncs, storage.ErrTransient},
		{storage.FlakySync, baseSyncs, nSyncs, storage.ErrMedium},
	}
	for _, sw := range sweeps {
		for idx := sw.lo; idx < sw.hi; idx += stride {
			label := fmt.Sprintf("%v/%v@%d", sw.op, sw.cls, idx)
			sys, flaky, inner := newFaultSystem(t)
			s0 := inner.Snapshot()
			flaky.FailOpAt(sw.op, idx, sw.cls)
			err := runCoreWorkload(sys)

			if sw.cls == storage.ErrTransient {
				// A single transient fault at any index must be fully
				// absorbed by the stack's retry layers.
				if err != nil {
					t.Fatalf("%s: transient fault leaked: %v", label, err)
				}
				if h := sys.Health(); h.Mode != thinp.PoolWrite {
					t.Fatalf("%s: mode = %v after absorbed transient", label, h.Mode)
				}
				if err := sys.Close(); err != nil {
					t.Fatalf("%s: close: %v", label, err)
				}
				report := analyzeEpoch(t, label, inner, s0, inner.Snapshot())
				if report.NonRandomChanged != 0 {
					t.Fatalf("%s: %d plaintext-looking changes", label, report.NonRandomChanged)
				}
				continue
			}

			// Permanent fault: the error surfaces, classified and traceable
			// to the injection; the pool lands in a defined mode.
			if err == nil {
				t.Fatalf("%s: permanent fault was swallowed", label)
			}
			if !errors.Is(err, storage.ErrInjected) {
				t.Fatalf("%s: error lost its injection marker: %v", label, err)
			}
			h := sys.Health()
			if h.Mode != thinp.PoolWrite && h.Mode != thinp.PoolReadOnly {
				t.Fatalf("%s: undefined pool mode %v (%s)", label, h.Mode, h.Reason)
			}
			if h.Mode == thinp.PoolReadOnly && h.Reason == "" {
				t.Fatalf("%s: read-only without a reason", label)
			}
			// Reads of committed data keep working in ReadOnly.
			hid, err := sys.OpenHidden("hidden-pass")
			if err != nil {
				t.Fatalf("%s: OpenHidden after fault: %v", label, err)
			}
			probe := make([]byte, blockSize)
			if err := hid.Device().ReadBlock(sweepHiddenBase, probe); err != nil {
				t.Fatalf("%s: read after fault: %v", label, err)
			}
			// Drain the scheduler; the commit in Close may legitimately
			// fail on a read-only pool, so shut the workers down directly.
			if err := sys.Scheduler().Close(); err != nil {
				t.Fatalf("%s: scheduler close: %v", label, err)
			}

			// Even the fault epoch must not leak plaintext-looking writes.
			// (Blocks provisioned, written and unwound around the fault may
			// read as unaccountable — inherent to ANY scheme when an epoch
			// spans a write-then-free, as the crash tests document — but
			// their content is still indistinguishable from noise.)
			report := analyzeEpoch(t, label, inner, s0, inner.Snapshot())
			if report.NonRandomChanged != 0 {
				t.Fatalf("%s: %d plaintext-looking changes in fault epoch",
					label, report.NonRandomChanged)
			}

			// Recovery: a reopen loads the last durable transaction with the
			// hidden payload intact, and the recovered system sustains a
			// spotless post-recovery epoch — writes, a commit, and a fully
			// clean adversary verdict.
			resys := verifyHiddenPayload(t, label, flaky)
			s2 := inner.Snapshot()
			if err := runCoreWorkload(resys); err != nil {
				t.Fatalf("%s: post-recovery workload: %v", label, err)
			}
			if err := resys.Close(); err != nil {
				t.Fatalf("%s: post-recovery close: %v", label, err)
			}
			report = analyzeEpoch(t, label+"/recovered", inner, s2, inner.Snapshot())
			if len(report.Unaccountable) != 0 || report.NonRandomChanged != 0 {
				t.Fatalf("%s: post-recovery epoch not deniable: %+v", label, report)
			}
		}
	}
}

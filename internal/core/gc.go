package core

import (
	"fmt"
	"sort"

	"mobiceal/internal/prng"
	"mobiceal/internal/storage"
)

// GCReport summarizes one garbage-collection pass.
type GCReport struct {
	// Fraction is the random reclaim percentage drawn for this pass.
	Fraction float64
	// Reclaimed counts the discarded dummy blocks.
	Reclaimed uint64
	// Scanned counts the candidate blocks examined.
	Scanned uint64
}

// GC reclaims a random percentage of the space occupied by dummy writes
// (paper Sec. IV-D). It must be invoked from hidden mode so the caller can
// name every volume that actually holds hidden data in protected; those
// volumes are skipped. GC deliberately never reclaims everything: if all
// dummy blocks vanished while hidden blocks stayed, a snapshot diff would
// expose exactly the hidden data, so the reclaim fraction is drawn randomly
// — skewed high for efficiency (1 - f² for uniform f), clamped to
// [0.05, 0.95] — and applied to a random subset.
//
// Virtual block 0 of every volume (verifier / cover block) is never
// reclaimed so all non-public volumes keep identical minimum footprints.
func (s *System) GC(protected []int, src *prng.Source) (GCReport, error) {
	if src == nil {
		src = prng.NewSource(s.cfg.Seed + 0x6763)
	}
	keep := map[int]bool{PublicVolumeID: true}
	for _, id := range protected {
		keep[id] = true
	}
	fraction := 1 - func() float64 { f := src.Float64(); return f * f }()
	if fraction < 0.05 {
		fraction = 0.05
	}
	if fraction > 0.95 {
		fraction = 0.95
	}
	report := GCReport{Fraction: fraction}

	for id := 2; id <= s.cfg.NumVolumes; id++ {
		if keep[id] {
			continue
		}
		vbs, err := s.pool.MappedVBlocks(id)
		if err != nil {
			return report, fmt.Errorf("core: listing volume %d: %w", id, err)
		}
		thin, err := s.pool.Thin(id)
		if err != nil {
			return report, err
		}
		// Random subset of size fraction*len, never touching vblock 0.
		candidates := vbs[:0:0]
		for _, vb := range vbs {
			if vb != 0 {
				candidates = append(candidates, vb)
			}
		}
		report.Scanned += uint64(len(candidates))
		src.Shuffle(len(candidates), func(i, j int) {
			candidates[i], candidates[j] = candidates[j], candidates[i]
		})
		take := candidates[:int(fraction*float64(len(candidates)))]
		// The random subset is re-sorted and discarded as run-length
		// ranges: dummy writes land on contiguous virtual offsets often
		// enough that vectored TRIM cuts the per-block pool-lock traffic
		// substantially, and the discarded *set* — all that the reclaim
		// randomness protects — is unchanged by the ordering.
		sort.Slice(take, func(i, j int) bool { return take[i] < take[j] })
		err = storage.ForEachRun(take, func(start uint64, count int) error {
			if err := thin.DiscardRange(start, uint64(count)); err != nil {
				return fmt.Errorf("core: discarding blocks [%d, %d) of volume %d: %w",
					start, start+uint64(count), id, err)
			}
			report.Reclaimed += uint64(count)
			return nil
		})
		if err != nil {
			return report, err
		}
	}
	if err := s.pool.Commit(); err != nil {
		return report, fmt.Errorf("core: committing GC: %w", err)
	}
	return report, nil
}

package core

import (
	"time"

	"mobiceal/internal/ioq"
	"mobiceal/internal/storage"
)

// syncRetried flushes dev, riding out transient controller faults with the
// same bounded retry the metadata commit path uses. Anything that still
// fails after the retries — or is not transient to begin with — surfaces.
func syncRetried(dev storage.Device) error {
	const attempts = 4
	err := dev.Sync()
	for attempt := 1; err != nil && storage.IsTransient(err) && attempt < attempts; attempt++ {
		time.Sleep(time.Duration(attempt) * 200 * time.Microsecond)
		err = dev.Sync()
	}
	return err
}

// Scheduler returns the system's shared I/O scheduler, starting it on
// first use. All volumes of the system submit through it, so concurrent
// traffic to public, hidden and dummy volumes shares one worker pool —
// and concurrent Flushes fold into single pool group commits.
func (s *System) Scheduler() *ioq.Scheduler {
	s.asyncOnce.Do(func() {
		s.sched = ioq.NewScheduler(ioq.Options{
			Workers:     s.cfg.AsyncWorkers,
			MaxInFlight: s.cfg.MaxInFlight,
			Retry:       s.cfg.Retry,
			Flight:      s.flight,
		})
	})
	return s.sched
}

// Close shuts the system down: the async scheduler drains and stops,
// then the pool metadata is committed so everything submitted before
// Close is durable. A system whose async API was never used starts the
// scheduler just to close it, so later Submit calls still get a clean
// ErrClosed future instead of a nil scheduler. The underlying device
// stays open — the caller owns it.
func (s *System) Close() error {
	if err := s.Scheduler().Close(); err != nil {
		return err
	}
	// Mirror Thin.Sync: flush the data device before committing the
	// metadata that references its blocks. (Today data and metadata are
	// slices of one parent device, so the commit's own sync would flush
	// both — but the pool supports distinct devices, and a committed
	// mapping must never point at data still sitting in a volatile
	// cache.)
	if err := syncRetried(s.pool.DataDevice()); err != nil {
		return err
	}
	return s.pool.Commit()
}

// FlushAll is the system-level durability barrier: it quiesces every
// volume's submission queue (every request submitted to any volume before
// the FlushAll drains), then folds ALL their durability into a single data
// sync and ONE pool group commit — one A/B slot flip covers the whole
// system, where per-volume Flushes would pay one device Sync each and rely
// on lucky overlap at the commit door to fold. Requests submitted while
// FlushAll runs are not ordered against it; they may land before the
// commit and simply ride along into it.
func (s *System) FlushAll() error {
	sched := s.Scheduler()
	qs := sched.Queues()
	futs := make([]*ioq.Future, len(qs))
	for i, q := range qs {
		futs[i] = q.Quiesce()
	}
	if err := ioq.WaitAll(futs...); err != nil {
		return err
	}
	if err := syncRetried(s.pool.DataDevice()); err != nil {
		return err
	}
	return s.pool.Commit()
}

// queue returns the volume's submission queue, registering it with the
// system scheduler on first use. Queues are shared per volume id: opening
// the same volume repeatedly (each Open returns a fresh *Volume over an
// equivalent decrypted view) reuses one queue, so a long-lived System's
// scheduler tracks at most NumVolumes queues no matter how many Volume
// handles were ever created — and FlushAll quiesces live volumes, not the
// ghosts of dropped handles.
func (v *Volume) queue() *ioq.VolumeQueue {
	v.qOnce.Do(func() {
		v.q = v.sys.volumeQueue(v.id, v.dev)
		if v.thin != nil {
			// Home this volume's provisioning on the shard matching its
			// submission queue: writers draining distinct queues then
			// allocate from distinct shards (affinity is a hint — the
			// random allocator ignores it to keep placement uniform).
			v.thin.SetAffinity(v.q.Index())
		}
	})
	return v.q
}

// volumeQueue returns the shared submission queue of volume id, creating
// it on first use.
func (s *System) volumeQueue(id int, dev storage.Device) *ioq.VolumeQueue {
	s.queueMu.Lock()
	defer s.queueMu.Unlock()
	if q, ok := s.queues[id]; ok {
		return q
	}
	q := s.Scheduler().Register(dev)
	if s.queues == nil {
		s.queues = make(map[int]*ioq.VolumeQueue)
	}
	s.queues[id] = q
	return q
}

// SubmitRead asynchronously reads blocks [start, start+len(dst)/bs) of
// the decrypted volume view into dst. dst must stay untouched until the
// future completes. Safe for concurrent use with every other volume
// operation.
func (v *Volume) SubmitRead(start uint64, dst []byte) *ioq.Future {
	return v.queue().SubmitRead(start, dst)
}

// SubmitWrite asynchronously writes src as blocks [start,
// start+len(src)/bs) of the decrypted volume view. src must stay stable
// until the future completes. A completed write has reached the device
// stack but is durable only after a completed Flush.
func (v *Volume) SubmitWrite(start uint64, src []byte) *ioq.Future {
	return v.queue().SubmitWrite(start, src)
}

// SubmitDiscard asynchronously TRIMs blocks [start, start+count) of the
// volume, releasing their physical blocks back to the pool.
func (v *Volume) SubmitDiscard(start, count uint64) *ioq.Future {
	return v.queue().SubmitDiscard(start, count)
}

// Flush submits a durability barrier: its future completes once every
// request submitted to this volume before the Flush has completed and the
// pool metadata commit covering them is durable. Concurrent flushes from
// several volumes fold into fewer group commits — N volumes flushing
// together cost far fewer than N metadata slot flips.
func (v *Volume) Flush() *ioq.Future {
	return v.queue().Flush()
}

package core

import (
	"bytes"
	"errors"
	"io"
	"math"
	"testing"

	"mobiceal/internal/prng"
	"mobiceal/internal/storage"
)

const blockSize = 4096

func testConfig(seed uint64) Config {
	return Config{
		NumVolumes: 6,
		Lambda:     1,
		X:          50,
		KDFIter:    16, // keep tests fast; crypto correctness is covered in xcrypto
		Entropy:    prng.NewSeededEntropy(seed),
		Seed:       seed,
		SeedSet:    true,
	}
}

func newSystem(t testing.TB, seed uint64, hidden []string) (*System, *storage.MemDevice) {
	t.Helper()
	dev := storage.NewMemDevice(blockSize, 4096) // 16 MB
	sys, err := Setup(dev, testConfig(seed), "decoy-pass", hidden)
	if err != nil {
		t.Fatalf("Setup: %v", err)
	}
	return sys, dev
}

func TestSetupAndPublicRoundtrip(t *testing.T) {
	sys, _ := newSystem(t, 1, nil)
	vol, err := sys.OpenPublic("decoy-pass")
	if err != nil {
		t.Fatal(err)
	}
	if vol.Mode() != ModePublic || vol.ID() != PublicVolumeID {
		t.Fatalf("vol = id %d mode %v", vol.ID(), vol.Mode())
	}
	fs, err := vol.Format()
	if err != nil {
		t.Fatal(err)
	}
	f, err := fs.Create("notes.txt")
	if err != nil {
		t.Fatal(err)
	}
	data := []byte("public shopping list")
	if _, err := f.WriteAt(data, 0); err != nil {
		t.Fatal(err)
	}
	if err := fs.Sync(); err != nil {
		t.Fatal(err)
	}

	// Remount through a fresh volume object.
	vol2, err := sys.OpenPublic("decoy-pass")
	if err != nil {
		t.Fatal(err)
	}
	fs2, err := vol2.Mount()
	if err != nil {
		t.Fatal(err)
	}
	f2, err := fs2.Open("notes.txt")
	if err != nil {
		t.Fatal(err)
	}
	got := make([]byte, len(data))
	if _, err := f2.ReadAt(got, 0); err != nil && !errors.Is(err, io.EOF) {
		t.Fatal(err)
	}
	if !bytes.Equal(data, got) {
		t.Fatal("public volume roundtrip mismatch")
	}
}

func TestWrongPublicPasswordFailsMount(t *testing.T) {
	sys, _ := newSystem(t, 2, nil)
	vol, err := sys.OpenPublic("decoy-pass")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := vol.Format(); err != nil {
		t.Fatal(err)
	}
	wrong, err := sys.OpenPublic("not-the-password")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := wrong.Mount(); err == nil {
		t.Fatal("mount with wrong password succeeded")
	}
}

func TestHiddenVolumeLifecycle(t *testing.T) {
	sys, _ := newSystem(t, 3, []string{"hidden-pw-1"})
	id, ok := sys.VerifyHidden("hidden-pw-1")
	if !ok {
		t.Fatal("VerifyHidden rejected the real hidden password")
	}
	if id < 2 || id > sys.NumVolumes() {
		t.Fatalf("hidden id %d out of range", id)
	}
	if _, ok := sys.VerifyHidden("wrong"); ok {
		t.Fatal("VerifyHidden accepted a wrong password")
	}

	vol, err := sys.OpenHidden("hidden-pw-1")
	if err != nil {
		t.Fatal(err)
	}
	if vol.Mode() != ModeHidden || vol.ID() != id {
		t.Fatalf("vol = id %d mode %v", vol.ID(), vol.Mode())
	}
	fs, err := vol.Format()
	if err != nil {
		t.Fatal(err)
	}
	f, err := fs.Create("secret.doc")
	if err != nil {
		t.Fatal(err)
	}
	secret := []byte("sensitive evidence")
	if _, err := f.WriteAt(secret, 0); err != nil {
		t.Fatal(err)
	}
	if err := fs.Sync(); err != nil {
		t.Fatal(err)
	}

	vol2, err := sys.OpenHidden("hidden-pw-1")
	if err != nil {
		t.Fatal(err)
	}
	fs2, err := vol2.Mount()
	if err != nil {
		t.Fatal(err)
	}
	f2, err := fs2.Open("secret.doc")
	if err != nil {
		t.Fatal(err)
	}
	got := make([]byte, len(secret))
	if _, err := f2.ReadAt(got, 0); err != nil && !errors.Is(err, io.EOF) {
		t.Fatal(err)
	}
	if !bytes.Equal(secret, got) {
		t.Fatal("hidden volume roundtrip mismatch")
	}
}

func TestOpenHiddenRejectsBadPassword(t *testing.T) {
	sys, _ := newSystem(t, 4, []string{"hidden-pw"})
	if _, err := sys.OpenHidden("nope"); !errors.Is(err, ErrBadPassword) {
		t.Fatalf("err = %v, want ErrBadPassword", err)
	}
	// The decoy password opens no hidden volume either.
	if _, err := sys.OpenHidden("decoy-pass"); !errors.Is(err, ErrBadPassword) {
		t.Fatalf("decoy on hidden err = %v, want ErrBadPassword", err)
	}
}

func TestDeviceWithoutHiddenVolumeRejectsAll(t *testing.T) {
	sys, _ := newSystem(t, 5, nil)
	for _, pwd := range []string{"a", "b", "decoy-pass"} {
		if _, err := sys.OpenHidden(pwd); !errors.Is(err, ErrBadPassword) {
			t.Fatalf("OpenHidden(%q) err = %v, want ErrBadPassword", pwd, err)
		}
	}
}

func TestMultiLevelDeniability(t *testing.T) {
	hidden := []string{"level-one-pw", "level-two-pw", "level-three-pw"}
	sys, _ := newSystem(t, 6, hidden)
	ids := map[int]bool{}
	for _, pwd := range hidden {
		vol, err := sys.OpenHidden(pwd)
		if err != nil {
			t.Fatalf("OpenHidden(%q): %v", pwd, err)
		}
		if ids[vol.ID()] {
			t.Fatalf("volume id %d reused across hidden passwords", vol.ID())
		}
		ids[vol.ID()] = true
		fs, err := vol.Format()
		if err != nil {
			t.Fatal(err)
		}
		f, err := fs.Create("data-" + pwd)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := f.WriteAt([]byte(pwd), 0); err != nil {
			t.Fatal(err)
		}
		if err := fs.Sync(); err != nil {
			t.Fatal(err)
		}
	}
	// Each hidden volume sees only its own data.
	for _, pwd := range hidden {
		vol, err := sys.OpenHidden(pwd)
		if err != nil {
			t.Fatal(err)
		}
		fs, err := vol.Mount()
		if err != nil {
			t.Fatal(err)
		}
		names := fs.List()
		if len(names) != 1 || names[0] != "data-"+pwd {
			t.Fatalf("volume for %q lists %v", pwd, names)
		}
	}
}

func TestPersistenceAcrossOpen(t *testing.T) {
	sys, dev := newSystem(t, 7, []string{"hidden-pw"})
	pub, err := sys.OpenPublic("decoy-pass")
	if err != nil {
		t.Fatal(err)
	}
	pubFS, err := pub.Format()
	if err != nil {
		t.Fatal(err)
	}
	pf, err := pubFS.Create("pub.txt")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := pf.WriteAt([]byte("public"), 0); err != nil {
		t.Fatal(err)
	}
	if err := pubFS.Sync(); err != nil {
		t.Fatal(err)
	}
	hid, err := sys.OpenHidden("hidden-pw")
	if err != nil {
		t.Fatal(err)
	}
	hidFS, err := hid.Format()
	if err != nil {
		t.Fatal(err)
	}
	hf, err := hidFS.Create("hid.txt")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := hf.WriteAt([]byte("hidden"), 0); err != nil {
		t.Fatal(err)
	}
	if err := hidFS.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := sys.Commit(); err != nil {
		t.Fatal(err)
	}

	// Reboot: open the same device fresh.
	sys2, err := Open(dev, Config{
		KDFIter: 16,
		Entropy: prng.NewSeededEntropy(99),
		Seed:    99,
		SeedSet: true,
	})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	if sys2.NumVolumes() != 6 {
		t.Fatalf("NumVolumes = %d after reopen", sys2.NumVolumes())
	}
	pub2, err := sys2.OpenPublic("decoy-pass")
	if err != nil {
		t.Fatal(err)
	}
	pubFS2, err := pub2.Mount()
	if err != nil {
		t.Fatal(err)
	}
	if names := pubFS2.List(); len(names) != 1 || names[0] != "pub.txt" {
		t.Fatalf("public names after reopen = %v", names)
	}
	hid2, err := sys2.OpenHidden("hidden-pw")
	if err != nil {
		t.Fatal(err)
	}
	hidFS2, err := hid2.Mount()
	if err != nil {
		t.Fatal(err)
	}
	if names := hidFS2.List(); len(names) != 1 || names[0] != "hid.txt" {
		t.Fatalf("hidden names after reopen = %v", names)
	}
}

func TestDummyWritesFireOnPublicTraffic(t *testing.T) {
	sys, _ := newSystem(t, 8, []string{"hidden-pw"})
	vol, err := sys.OpenPublic("decoy-pass")
	if err != nil {
		t.Fatal(err)
	}
	fs, err := vol.Format()
	if err != nil {
		t.Fatal(err)
	}
	f, err := fs.Create("big.bin")
	if err != nil {
		t.Fatal(err)
	}
	data := make([]byte, 400*blockSize)
	if _, err := prng.NewSource(1).Read(data); err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteAt(data, 0); err != nil {
		t.Fatal(err)
	}
	decisions, fires, blocks := sys.Policy().Stats()
	if decisions == 0 {
		t.Fatal("no provisioning decisions recorded")
	}
	if fires == 0 || blocks == 0 {
		t.Fatalf("dummy writes never fired over %d decisions", decisions)
	}
	if got := sys.Pool().DummyBlocksWritten(); got == 0 {
		t.Fatal("pool wrote no dummy blocks")
	}
	// Firing probability must stay under 50% (rand in [1,2x] vs mod x).
	if rate := float64(fires) / float64(decisions); rate >= 0.5 {
		t.Fatalf("dummy fire rate %.2f >= 0.5", rate)
	}
}

func TestDummyWritesDoNotCorruptVolumes(t *testing.T) {
	// Heavy interleaved public+hidden traffic with dummy writes landing in
	// random volumes must never corrupt either file system.
	sys, _ := newSystem(t, 9, []string{"hidden-pw"})
	pub, err := sys.OpenPublic("decoy-pass")
	if err != nil {
		t.Fatal(err)
	}
	pubFS, err := pub.Format()
	if err != nil {
		t.Fatal(err)
	}
	hid, err := sys.OpenHidden("hidden-pw")
	if err != nil {
		t.Fatal(err)
	}
	hidFS, err := hid.Format()
	if err != nil {
		t.Fatal(err)
	}
	pubData := make([]byte, 200*blockSize)
	hidData := make([]byte, 100*blockSize)
	src := prng.NewSource(10)
	if _, err := src.Read(pubData); err != nil {
		t.Fatal(err)
	}
	if _, err := src.Read(hidData); err != nil {
		t.Fatal(err)
	}
	pubF, err := pubFS.Create("p")
	if err != nil {
		t.Fatal(err)
	}
	hidF, err := hidFS.Create("h")
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		off := int64(i) * 20 * blockSize
		if _, err := pubF.WriteAt(pubData[off:off+20*blockSize], off); err != nil {
			t.Fatal(err)
		}
		hoff := int64(i) * 10 * blockSize
		if _, err := hidF.WriteAt(hidData[hoff:hoff+10*blockSize], hoff); err != nil {
			t.Fatal(err)
		}
	}
	gotPub := make([]byte, len(pubData))
	if _, err := pubF.ReadAt(gotPub, 0); err != nil && !errors.Is(err, io.EOF) {
		t.Fatal(err)
	}
	if !bytes.Equal(pubData, gotPub) {
		t.Fatal("public data corrupted by dummy writes")
	}
	gotHid := make([]byte, len(hidData))
	if _, err := hidF.ReadAt(gotHid, 0); err != nil && !errors.Is(err, io.EOF) {
		t.Fatal(err)
	}
	if !bytes.Equal(hidData, gotHid) {
		t.Fatal("hidden data corrupted by dummy writes")
	}
}

func TestGCReclaimsOnlyUnprotectedDummySpace(t *testing.T) {
	sys, _ := newSystem(t, 11, []string{"hidden-pw"})
	pub, err := sys.OpenPublic("decoy-pass")
	if err != nil {
		t.Fatal(err)
	}
	pubFS, err := pub.Format()
	if err != nil {
		t.Fatal(err)
	}
	f, err := pubFS.Create("traffic")
	if err != nil {
		t.Fatal(err)
	}
	data := make([]byte, 600*blockSize)
	if _, err := f.WriteAt(data, 0); err != nil {
		t.Fatal(err)
	}
	hid, err := sys.OpenHidden("hidden-pw")
	if err != nil {
		t.Fatal(err)
	}
	hidFS, err := hid.Format()
	if err != nil {
		t.Fatal(err)
	}
	hf, err := hidFS.Create("keep")
	if err != nil {
		t.Fatal(err)
	}
	secret := []byte("must survive GC")
	if _, err := hf.WriteAt(secret, 0); err != nil {
		t.Fatal(err)
	}
	if err := hidFS.Sync(); err != nil {
		t.Fatal(err)
	}
	hiddenID := hid.ID()
	hiddenBefore, err := sys.Pool().MappedBlocks(hiddenID)
	if err != nil {
		t.Fatal(err)
	}
	dummyBefore := sys.Pool().DummyBlocksWritten()
	if dummyBefore == 0 {
		t.Skip("workload produced no dummy blocks with this seed")
	}
	allocBefore := sys.Pool().AllocatedBlocks()

	report, err := sys.GC([]int{hiddenID}, prng.NewSource(12))
	if err != nil {
		t.Fatal(err)
	}
	if report.Reclaimed == 0 {
		t.Fatal("GC reclaimed nothing")
	}
	if report.Fraction < 0.05 || report.Fraction > 0.95 {
		t.Fatalf("fraction %v out of bounds", report.Fraction)
	}
	if report.Reclaimed >= report.Scanned {
		t.Fatal("GC reclaimed all dummy blocks — snapshot diff would expose hidden data")
	}
	if got := sys.Pool().AllocatedBlocks(); got != allocBefore-report.Reclaimed {
		t.Fatalf("allocated %d, want %d", got, allocBefore-report.Reclaimed)
	}
	hiddenAfter, err := sys.Pool().MappedBlocks(hiddenID)
	if err != nil {
		t.Fatal(err)
	}
	if hiddenAfter != hiddenBefore {
		t.Fatalf("protected hidden volume shrank: %d -> %d", hiddenBefore, hiddenAfter)
	}
	// Hidden data still readable.
	hid2, err := sys.OpenHidden("hidden-pw")
	if err != nil {
		t.Fatal(err)
	}
	hidFS2, err := hid2.Mount()
	if err != nil {
		t.Fatal(err)
	}
	hf2, err := hidFS2.Open("keep")
	if err != nil {
		t.Fatal(err)
	}
	got := make([]byte, len(secret))
	if _, err := hf2.ReadAt(got, 0); err != nil && !errors.Is(err, io.EOF) {
		t.Fatal(err)
	}
	if !bytes.Equal(secret, got) {
		t.Fatal("hidden data lost after GC")
	}
}

func TestSetupErrors(t *testing.T) {
	dev := storage.NewMemDevice(blockSize, 4096)
	cfg := testConfig(13)
	cfg.NumVolumes = 1
	if _, err := Setup(dev, cfg, "p", nil); !errors.Is(err, ErrBadConfig) {
		t.Fatalf("1-volume err = %v, want ErrBadConfig", err)
	}
	cfg = testConfig(13)
	if _, err := Setup(dev, cfg, "p", []string{"a", "b", "c", "d", "e", "f"}); !errors.Is(err, ErrBadConfig) {
		t.Fatalf("too-many-hidden err = %v, want ErrBadConfig", err)
	}
	tiny := storage.NewMemDevice(blockSize, 8)
	if _, err := Setup(tiny, testConfig(13), "p", nil); !errors.Is(err, ErrTooSmall) {
		t.Fatalf("tiny device err = %v, want ErrTooSmall", err)
	}
}

func TestOpenRejectsUninitializedDevice(t *testing.T) {
	dev := storage.NewMemDevice(blockSize, 4096)
	if _, err := Open(dev, testConfig(14)); err == nil {
		t.Fatal("Open on blank device succeeded")
	}
}

func TestAllNonPublicVolumesLookAlike(t *testing.T) {
	// After setup, every non-public volume (hidden or dummy) must have the
	// same mapped-block footprint: exactly one block at vblock 0.
	sys, _ := newSystem(t, 15, []string{"hidden-pw"})
	for id := 2; id <= sys.NumVolumes(); id++ {
		mapped, err := sys.Pool().MappedBlocks(id)
		if err != nil {
			t.Fatal(err)
		}
		if mapped != 1 {
			t.Fatalf("volume %d has %d mapped blocks after setup, want 1", id, mapped)
		}
		vbs, err := sys.Pool().MappedVBlocks(id)
		if err != nil {
			t.Fatal(err)
		}
		if len(vbs) != 1 || vbs[0] != 0 {
			t.Fatalf("volume %d mapped vblocks = %v, want [0]", id, vbs)
		}
	}
}

func TestPolicyFireRateTracksStoredRand(t *testing.T) {
	// Trigger rate: E[stored_rand mod x]/(2x) ~ 0.245 for x=50; the
	// round-to-zero dummy sizes suppress a further P(Exp(1) < 0.5) ~ 0.393
	// of those, leaving an effective fire rate near 0.245 * 0.607 ~ 0.149.
	policy := NewStoredRandPolicy(PolicyConfig{
		X:            50,
		Lambda:       1,
		NumVolumes:   8,
		PublicID:     1,
		RefreshEvery: 100,
		Src:          prng.NewSource(16),
	})
	const trials = 200000
	fires := 0
	for i := 0; i < trials; i++ {
		if _, _, fire := policy.OnProvision(1); fire {
			fires++
		}
	}
	rate := float64(fires) / trials
	want := 0.245 * (1 - (1 - math.Exp(-0.5)))
	if math.Abs(rate-want) > 0.02 {
		t.Fatalf("fire rate %.3f, want about %.3f", rate, want)
	}
}

func TestPolicyMeanDummyBlocksPerDecision(t *testing.T) {
	// The paper's calibration: with lambda=1 a dummy write allocates one
	// block on average, so blocks-per-decision ~ triggerRate * E[round] ~
	// 0.245 * 0.96 ~ 0.235.
	policy := NewStoredRandPolicy(PolicyConfig{
		X: 50, Lambda: 1, NumVolumes: 8, PublicID: 1,
		RefreshEvery: 100,
		Src:          prng.NewSource(26),
	})
	const trials = 300000
	for i := 0; i < trials; i++ {
		policy.OnProvision(1)
	}
	decisions, _, blocks := policy.Stats()
	perDecision := float64(blocks) / float64(decisions)
	if math.Abs(perDecision-0.235) > 0.03 {
		t.Fatalf("blocks per decision %.3f, want about 0.235", perDecision)
	}
}

func TestPolicyIgnoresNonPublicProvisioning(t *testing.T) {
	policy := NewStoredRandPolicy(PolicyConfig{
		X: 50, Lambda: 1, NumVolumes: 8, PublicID: 1,
		Src: prng.NewSource(17),
	})
	for i := 0; i < 1000; i++ {
		if _, _, fire := policy.OnProvision(2 + i%6); fire {
			t.Fatal("policy fired on non-public provisioning")
		}
	}
	if d, f, b := policy.Stats(); d != 0 || f != 0 || b != 0 {
		t.Fatalf("stats = %d/%d/%d for non-public traffic", d, f, b)
	}
}

func TestPolicyTargetsValidDummyVolumes(t *testing.T) {
	policy := NewStoredRandPolicy(PolicyConfig{
		X: 50, Lambda: 1, NumVolumes: 8, PublicID: 1,
		RefreshEvery: 10,
		Src:          prng.NewSource(18),
	})
	for i := 0; i < 50000; i++ {
		target, count, fire := policy.OnProvision(1)
		if !fire {
			continue
		}
		if target < 2 || target > 8 {
			t.Fatalf("dummy target %d out of [2,8]", target)
		}
		if count < 1 {
			t.Fatalf("dummy count %d < 1", count)
		}
	}
}

func TestPolicyDummySizeDistribution(t *testing.T) {
	// Fired sizes follow round(Exp(1)) conditioned on >= 1: mean
	// E[round]/P(round>=1) ~ 0.96/0.607 ~ 1.58, and large sizes occur but
	// are rare.
	policy := NewStoredRandPolicy(PolicyConfig{
		X: 50, Lambda: 1, NumVolumes: 4, PublicID: 1,
		RefreshEvery: 50,
		Src:          prng.NewSource(19),
	})
	var sum, n, over4 int
	for i := 0; i < 400000 && n < 20000; i++ {
		_, count, fire := policy.OnProvision(1)
		if !fire {
			continue
		}
		sum += count
		n++
		if count > 4 {
			over4++
		}
	}
	if n < 1000 {
		t.Fatalf("only %d dummy writes fired", n)
	}
	mean := float64(sum) / float64(n)
	want := 0.96 / (1 - (1 - math.Exp(-0.5)))
	if math.Abs(mean-want) > 0.1 {
		t.Fatalf("mean dummy size %.3f, want about %.3f", mean, want)
	}
	frac := float64(over4) / float64(n)
	if frac == 0 || frac > 0.10 {
		t.Fatalf("P(size>4) = %.4f, want small but nonzero", frac)
	}
}

func TestHiddenIndexCollisionResolvedBySaltRetry(t *testing.T) {
	// With 2 volumes there is only one hidden slot; two hidden passwords
	// must always collide and Setup must fail explicitly.
	dev := storage.NewMemDevice(blockSize, 4096)
	cfg := testConfig(20)
	cfg.NumVolumes = 2
	_, err := Setup(dev, cfg, "decoy", []string{"h1", "h2"})
	if !errors.Is(err, ErrIndexCollision) && !errors.Is(err, ErrBadConfig) {
		t.Fatalf("err = %v, want collision or config error", err)
	}
	// With many volumes and two passwords, salt retry must succeed.
	dev2 := storage.NewMemDevice(blockSize, 4096)
	cfg2 := testConfig(21)
	cfg2.NumVolumes = 6
	sys, err := Setup(dev2, cfg2, "decoy", []string{"h1", "h2"})
	if err != nil {
		t.Fatalf("Setup with 2 hidden: %v", err)
	}
	a, okA := sys.VerifyHidden("h1")
	b, okB := sys.VerifyHidden("h2")
	if !okA || !okB || a == b {
		t.Fatalf("hidden ids = %d,%d (ok=%v,%v)", a, b, okA, okB)
	}
}

func TestModeString(t *testing.T) {
	if ModePublic.String() != "public" || ModeHidden.String() != "hidden" {
		t.Fatal("mode strings")
	}
	if Mode(99).String() == "" {
		t.Fatal("unknown mode string empty")
	}
}

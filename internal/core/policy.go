// Package core implements MobiCeal itself: the dummy-write policy, the
// on-disk layout (metadata | data | crypto footer, Fig. 3), volume setup
// and opening with multi-level deniability (Sec. IV-B/IV-C), and the
// dummy-space garbage collector (Sec. IV-D). It composes the substrates:
// thin provisioning (thinp) with the random allocator, dm-crypt (dm) with
// XTS (xcrypto), and the crypto footer.
package core

import (
	"sync"

	"mobiceal/internal/prng"
)

// StoredRandPolicy is the paper's dummy-write trigger (Sec. IV-B, V-A).
//
// On every provisioning write to the public volume it fires iff
//
//	rand <= stored_rand mod x
//
// where rand is drawn uniformly from [1, 2x] per decision (bounding the
// firing probability below 50%) and stored_rand is a random value refreshed
// only occasionally — the kernel prototype uses jiffies captured at most
// once per hour — so the adversary cannot learn the current firing rate.
// When the trigger fires the dummy size is m = Exp(lambda) rounded to whole
// blocks ("m = m' = -(ln(1-f))/lambda ... if we choose lambda as 1, each
// dummy write will be allocated one free block on average"); a rounding to
// zero means the fired dummy write allocates nothing. The write is directed
// at virtual volume j = (stored_rand mod (n-1)) + 2.
//
// StoredRandPolicy is safe for concurrent use.
type StoredRandPolicy struct {
	mu sync.Mutex

	x          int
	lambda     float64
	numVolumes int
	publicID   int

	src          *prng.Source
	storedRand   uint64
	refreshEvery int // provisioning decisions between stored_rand refreshes
	sinceRefresh int

	// Counters for experiments.
	decisions uint64
	fires     uint64
	blocks    uint64
}

// PolicyConfig configures a StoredRandPolicy.
type PolicyConfig struct {
	// X is the paper's positive constant x (default 50).
	X int
	// Lambda is the exponential rate for dummy sizes (default 1).
	Lambda float64
	// NumVolumes is n, the total virtual volume count.
	NumVolumes int
	// PublicID is the public volume's thin id (V1).
	PublicID int
	// RefreshEvery is how many provisioning decisions pass between
	// stored_rand refreshes, standing in for the prototype's one-hour
	// jiffies rule (default 1024).
	RefreshEvery int
	// Src drives all random draws; nil seeds a fresh source from zero.
	Src *prng.Source
}

// NewStoredRandPolicy returns a policy with the paper's defaults filled in.
func NewStoredRandPolicy(cfg PolicyConfig) *StoredRandPolicy {
	if cfg.X <= 0 {
		cfg.X = 50
	}
	if cfg.Lambda <= 0 {
		cfg.Lambda = 1
	}
	if cfg.RefreshEvery <= 0 {
		cfg.RefreshEvery = 1024
	}
	if cfg.Src == nil {
		cfg.Src = prng.NewSource(0)
	}
	if cfg.PublicID == 0 {
		cfg.PublicID = 1
	}
	p := &StoredRandPolicy{
		x:            cfg.X,
		lambda:       cfg.Lambda,
		numVolumes:   cfg.NumVolumes,
		publicID:     cfg.PublicID,
		src:          cfg.Src,
		refreshEvery: cfg.RefreshEvery,
	}
	p.storedRand = p.src.Uint64()
	return p
}

// Refresh draws a new stored_rand immediately (the "periodically updated,
// e.g. daily" rule made explicit for tests and experiments).
func (p *StoredRandPolicy) Refresh() {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.storedRand = p.src.Uint64()
	p.sinceRefresh = 0
}

// OnProvision implements thinp.DummyPolicy.
func (p *StoredRandPolicy) OnProvision(thinID int) (target, count int, fire bool) {
	if thinID != p.publicID || p.numVolumes < 2 {
		return 0, 0, false
	}
	p.mu.Lock()
	defer p.mu.Unlock()

	p.sinceRefresh++
	if p.sinceRefresh >= p.refreshEvery {
		p.storedRand = p.src.Uint64()
		p.sinceRefresh = 0
	}
	p.decisions++

	threshold := p.storedRand % uint64(p.x)
	randDraw := uint64(p.src.IntRange(1, 2*p.x))
	if randDraw > threshold {
		return 0, 0, false
	}
	count = p.src.ExpRound(p.lambda)
	if count < 1 {
		// The exponential sample rounded to zero blocks: nothing to write.
		return 0, 0, false
	}
	target = int(p.storedRand%uint64(p.numVolumes-1)) + 2
	p.fires++
	p.blocks += uint64(count)
	return target, count, true
}

// Stats returns (provisioning decisions, dummy writes fired, noise blocks
// requested) so experiments can report measured rates.
func (p *StoredRandPolicy) Stats() (decisions, fires, blocks uint64) {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.decisions, p.fires, p.blocks
}

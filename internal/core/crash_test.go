package core

import (
	"bytes"
	"fmt"
	"testing"

	"mobiceal/internal/minifs"
	"mobiceal/internal/storage"
)

// readHidden opens the hidden volume and reads nBlocks plaintext blocks
// starting at block start of its file-system view.
func readHidden(t *testing.T, sys *System, password string, start, nBlocks uint64) []byte {
	t.Helper()
	vol, err := sys.OpenHidden(password)
	if err != nil {
		t.Fatalf("OpenHidden: %v", err)
	}
	out := make([]byte, nBlocks*uint64(vol.Device().BlockSize()))
	if err := storage.ReadBlocks(vol.Device(), start, out); err != nil {
		t.Fatalf("reading hidden volume: %v", err)
	}
	return out
}

// TestCrashEnumerationHiddenInvariants runs the full system over a crash
// device, writes hidden-volume data across two commits, and re-opens the
// device from the stable state after every persisted write — plus a
// torn-block variant of each — asserting the paper-level deniability
// invariant at every point: the device opens, the pool is at exactly a
// committed transaction, and the hidden data is either fully intact or
// indistinguishably absent (reads as unprovisioned zeros), never partially
// exposed.
func TestCrashEnumerationHiddenInvariants(t *testing.T) {
	const hpw = "hidden-pass"
	crash := storage.NewCrashDevice(storage.NewMemDevice(blockSize, 4096))
	cfg := testConfig(71)
	sys, err := Setup(crash, cfg, "decoy-pass", []string{hpw})
	if err != nil {
		t.Fatalf("Setup: %v", err)
	}
	if err := crash.StartRecording(); err != nil {
		t.Fatal(err)
	}
	preTx := sys.Pool().TransactionID()

	// "Indistinguishably absent" is what an unprovisioned region reads as
	// through the volume cipher — the deterministic decryption of zeros,
	// not plaintext zeros. Capture it before writing anything.
	absent1 := readHidden(t, sys, hpw, 0, 4)
	absent2 := readHidden(t, sys, hpw, 64, 4)

	// Commit 1: four blocks of hidden payload at block 0 of the volume view.
	payload1 := bytes.Repeat([]byte{0xA1}, 4*blockSize)
	vol, err := sys.OpenHidden(hpw)
	if err != nil {
		t.Fatal(err)
	}
	if err := storage.WriteBlocks(vol.Device(), 0, payload1); err != nil {
		t.Fatal(err)
	}
	if err := sys.Commit(); err != nil {
		t.Fatal(err)
	}
	midTx := sys.Pool().TransactionID()

	// Commit 2: four more blocks further into the volume.
	payload2 := bytes.Repeat([]byte{0xB2}, 4*blockSize)
	if err := storage.WriteBlocks(vol.Device(), 64, payload2); err != nil {
		t.Fatal(err)
	}
	if err := sys.Commit(); err != nil {
		t.Fatal(err)
	}
	postTx := sys.Pool().TransactionID()

	check := func(label string, img storage.Device) bool {
		re, err := Open(img, cfg)
		if err != nil {
			t.Fatalf("%s: Open: %v", label, err)
		}
		if err := re.Pool().CheckIntegrity(); err != nil {
			t.Fatalf("%s: pool integrity: %v", label, err)
		}
		tx := re.Pool().TransactionID()
		var want1, want2 []byte
		switch tx {
		case preTx:
			want1, want2 = absent1, absent2
		case midTx:
			want1, want2 = payload1, absent2
		case postTx:
			want1, want2 = payload1, payload2
		default:
			t.Fatalf("%s: recovered tx %d is not one of the committed %d/%d/%d",
				label, tx, preTx, midTx, postTx)
		}
		// The hidden volume must still open — the verifier block survives
		// every crash point — and expose exactly the committed content.
		if got := readHidden(t, re, hpw, 0, 4); !bytes.Equal(got, want1) {
			t.Fatalf("%s: hidden region 1 at tx %d is neither intact nor absent", label, tx)
		}
		if got := readHidden(t, re, hpw, 64, 4); !bytes.Equal(got, want2) {
			t.Fatalf("%s: hidden region 2 at tx %d is neither intact nor absent", label, tx)
		}
		return re.Recovery().RolledBack
	}

	total := crash.PersistedWrites()
	if total < 10 {
		t.Fatalf("only %d persisted writes recorded; workload too small", total)
	}
	rollbacks := 0
	for n := 0; n <= total; n++ {
		img, err := crash.CrashImage(n)
		if err != nil {
			t.Fatal(err)
		}
		if check(fmt.Sprintf("cut@%d", n), img) {
			rollbacks++
		}
		if n == total {
			continue
		}
		torn, err := crash.CrashImageTorn(n, blockSize/2)
		if err != nil {
			t.Fatal(err)
		}
		if check(fmt.Sprintf("torn@%d", n), torn) {
			rollbacks++
		}
	}
	// Crash points that interrupt a commit mid-image leave a slot that
	// fails validation; recovery must have reported rolling it back at
	// least somewhere in the sweep.
	if rollbacks == 0 {
		t.Fatal("no crash point exercised the rollback path")
	}

	// A wrong password still opens nothing after recovery, at an arbitrary
	// mid-commit crash point.
	img, err := crash.CrashImage(total / 2)
	if err != nil {
		t.Fatal(err)
	}
	re, err := Open(img, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := re.OpenHidden("not-the-password"); err != ErrBadPassword {
		t.Fatalf("wrong password after recovery err = %v, want ErrBadPassword", err)
	}
}

// TestCrashEnumerationHiddenFS is the full-stack variant: a journaled
// minifs on an encrypted hidden volume on the A/B thin pool, all on one
// crash device. A file is created and synced; crashing at every persisted
// device write (and a torn variant of each), the stack must reopen end to
// end and show the file either fully present or cleanly absent.
func TestCrashEnumerationHiddenFS(t *testing.T) {
	const hpw = "hidden-pass"
	crash := storage.NewCrashDevice(storage.NewMemDevice(blockSize, 4096))
	cfg := testConfig(73)
	sys, err := Setup(crash, cfg, "decoy-pass", []string{hpw})
	if err != nil {
		t.Fatal(err)
	}
	vol, err := sys.OpenHidden(hpw)
	if err != nil {
		t.Fatal(err)
	}
	fs, err := minifs.Format(vol.Device(), 16)
	if err != nil {
		t.Fatalf("formatting hidden volume: %v", err)
	}
	if err := fs.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := crash.StartRecording(); err != nil {
		t.Fatal(err)
	}

	payload := bytes.Repeat([]byte{0xD7}, 2*blockSize+100)
	f, err := fs.Create("secret")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteAt(payload, 0); err != nil {
		t.Fatal(err)
	}
	if err := fs.Sync(); err != nil {
		t.Fatal(err)
	}

	check := func(label string, img storage.Device) {
		re, err := Open(img, cfg)
		if err != nil {
			t.Fatalf("%s: Open: %v", label, err)
		}
		if err := re.Pool().CheckIntegrity(); err != nil {
			t.Fatalf("%s: pool integrity: %v", label, err)
		}
		reVol, err := re.OpenHidden(hpw)
		if err != nil {
			t.Fatalf("%s: OpenHidden: %v", label, err)
		}
		reFS, err := minifs.Mount(reVol.Device())
		if err != nil {
			t.Fatalf("%s: mounting hidden FS: %v", label, err)
		}
		if err := reFS.CheckIntegrity(); err != nil {
			t.Fatalf("%s: FS integrity: %v", label, err)
		}
		switch names := reFS.List(); len(names) {
		case 0:
			// Cleanly absent — the pre-Sync state.
		case 1:
			if names[0] != "secret" {
				t.Fatalf("%s: unexpected file %q", label, names[0])
			}
			rf, err := reFS.Open("secret")
			if err != nil {
				t.Fatal(err)
			}
			got := make([]byte, rf.Size())
			if _, err := rf.ReadAt(got, 0); err != nil {
				t.Fatalf("%s: reading recovered file: %v", label, err)
			}
			if !bytes.Equal(got, payload) {
				t.Fatalf("%s: recovered file content is partial", label)
			}
		default:
			t.Fatalf("%s: files = %v", label, names)
		}
	}

	total := crash.PersistedWrites()
	if total < 10 {
		t.Fatalf("only %d persisted writes; workload too small", total)
	}
	for n := 0; n <= total; n++ {
		img, err := crash.CrashImage(n)
		if err != nil {
			t.Fatal(err)
		}
		check(fmt.Sprintf("cut@%d", n), img)
		if n == total {
			continue
		}
		torn, err := crash.CrashImageTorn(n, blockSize/2)
		if err != nil {
			t.Fatal(err)
		}
		check(fmt.Sprintf("torn@%d", n), torn)
	}
}

// TestOpenReportsRecovery checks the mount-time recovery record surfaces
// through core.System.
func TestOpenReportsRecovery(t *testing.T) {
	crash := storage.NewCrashDevice(storage.NewMemDevice(blockSize, 4096))
	cfg := testConfig(72)
	sys, err := Setup(crash, cfg, "decoy-pass", nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := crash.StartRecording(); err != nil {
		t.Fatal(err)
	}
	vol, err := sys.OpenPublic("decoy-pass")
	if err != nil {
		t.Fatal(err)
	}
	if err := storage.WriteBlocks(vol.Device(), 0, make([]byte, 8*blockSize)); err != nil {
		t.Fatal(err)
	}
	preTx := sys.Pool().TransactionID()
	if err := sys.Commit(); err != nil {
		t.Fatal(err)
	}

	// Crash one write into the commit's metadata stream: recovery must
	// roll back to the pre-commit transaction and say so.
	img, err := crash.CrashImage(crash.PersistedWrites() - 1)
	if err != nil {
		t.Fatal(err)
	}
	re, err := Open(img, cfg)
	if err != nil {
		t.Fatal(err)
	}
	rec := re.Recovery()
	if re.Pool().TransactionID() != preTx {
		t.Fatalf("tx = %d, want rollback to %d", re.Pool().TransactionID(), preTx)
	}
	if !rec.RolledBack || rec.TxID != preTx {
		t.Fatalf("recovery = %+v, want RolledBack at tx %d", rec, preTx)
	}

	// A clean image reports no rollback.
	clean, err := crash.CrashImage(crash.PersistedWrites())
	if err != nil {
		t.Fatal(err)
	}
	re2, err := Open(clean, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if rec := re2.Recovery(); rec.RolledBack {
		t.Fatalf("clean open reported rollback: %+v", rec)
	}
}

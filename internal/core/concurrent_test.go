package core

import (
	"bytes"
	"math/rand"
	"sync"
	"testing"

	"mobiceal/internal/ioq"
	"mobiceal/internal/prng"
	"mobiceal/internal/storage"
)

// concurrentWorkload hammers a system's public and hidden volumes from
// many goroutines through the asynchronous API — writes, read-backs,
// discards and mid-run flushes — returning the payload each worker last
// wrote to its disjoint region so callers can verify survival.
func concurrentWorkload(t *testing.T, sys *System, hidden string, workers, rounds int) (pubFinal, hidFinal map[int][]byte) {
	t.Helper()
	pub, err := sys.OpenPublic("decoy-pass")
	if err != nil {
		t.Fatal(err)
	}
	hid, err := sys.OpenHidden(hidden)
	if err != nil {
		t.Fatal(err)
	}
	const region = 64 // blocks per worker
	pubFinal = make(map[int][]byte)
	hidFinal = make(map[int][]byte)
	var mu sync.Mutex
	var wg sync.WaitGroup
	for i, vol := range []*Volume{pub, hid} {
		finals := pubFinal
		if i == 1 {
			finals = hidFinal
		}
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(vol *Volume, finals map[int][]byte, w int) {
				defer wg.Done()
				rng := rand.New(rand.NewSource(int64(vol.ID())<<8 | int64(w)))
				base := uint64(w * region)
				buf := make([]byte, 4*blockSize)
				for r := 0; r < rounds; r++ {
					off := base + uint64(rng.Intn(region-4))
					switch rng.Intn(6) {
					case 0, 1, 2:
						rng.Read(buf)
						if err := vol.SubmitWrite(off, buf).Wait(); err != nil {
							t.Error(err)
							return
						}
					case 3:
						dst := make([]byte, 4*blockSize)
						if err := vol.SubmitRead(off, dst).Wait(); err != nil {
							t.Error(err)
							return
						}
					case 4:
						if err := vol.SubmitDiscard(off, 2).Wait(); err != nil {
							t.Error(err)
							return
						}
					case 5:
						if err := vol.Flush().Wait(); err != nil {
							t.Error(err)
							return
						}
					}
				}
				// Final deterministic payload over the region head, then a
				// durability barrier, so the caller can assert survival.
				final := make([]byte, 4*blockSize)
				rng.Read(final)
				if err := vol.SubmitWrite(base, final).Wait(); err != nil {
					t.Error(err)
					return
				}
				if err := vol.Flush().Wait(); err != nil {
					t.Error(err)
					return
				}
				mu.Lock()
				finals[w] = final
				mu.Unlock()
			}(vol, finals, w)
		}
	}
	wg.Wait()
	return pubFinal, hidFinal
}

// TestConcurrentWorkloadInvariants runs the randomized concurrent
// workload over public and hidden volumes, then asserts the system-level
// invariants survive concurrency: pool integrity and hidden-data
// durability across a clean reopen. (The multi-snapshot adversary's
// verdict on the same workload is asserted at the public API level, in
// the root package's TestConcurrentWorkloadDeniability — the adversary
// package imports core and cannot be used here.) Run under -race this is
// the end-to-end locking test for the whole stack.
func TestConcurrentWorkloadInvariants(t *testing.T) {
	const hpw = "hidden-pass"
	dev := storage.NewMemDevice(blockSize, 8192)
	cfg := testConfig(29)
	sys, err := Setup(dev, cfg, "decoy-pass", []string{hpw})
	if err != nil {
		t.Fatal(err)
	}

	pubFinal, hidFinal := concurrentWorkload(t, sys, hpw, 4, 60)
	if t.Failed() {
		return
	}
	if err := sys.Close(); err != nil {
		t.Fatal(err)
	}
	if err := sys.Pool().CheckIntegrity(); err != nil {
		t.Fatalf("integrity after concurrent workload: %v", err)
	}

	// Reopen: the flushed final payloads of every worker survive.
	re, err := Open(dev, cfg)
	if err != nil {
		t.Fatal(err)
	}
	checkFinals := func(vol *Volume, finals map[int][]byte, label string) {
		for w, want := range finals {
			got := make([]byte, len(want))
			if err := storage.ReadBlocks(vol.Device(), uint64(w*64), got); err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(got, want) {
				t.Fatalf("%s worker %d: flushed payload lost across reopen", label, w)
			}
		}
	}
	rePub, err := re.OpenPublic("decoy-pass")
	if err != nil {
		t.Fatal(err)
	}
	checkFinals(rePub, pubFinal, "public")
	reHid, err := re.OpenHidden(hpw)
	if err != nil {
		t.Fatal(err)
	}
	checkFinals(reHid, hidFinal, "hidden")
}

// TestSubmitAfterCloseWithoutAsyncUse pins the post-Close contract for a
// system whose async API was never touched before Close: submissions must
// fail with a clean error, not crash on a missing scheduler.
// TestFlushAllFoldsIntoOneCommit pins the system-level barrier: FlushAll
// quiesces every volume's queue and folds the durability of ALL of them
// into exactly one pool commit (one call, one A/B slot flip), and the
// flushed payloads survive a reopen from the raw device without Close.
func TestFlushAllFoldsIntoOneCommit(t *testing.T) {
	sys, dev := newSystem(t, 51, []string{"hidden-pass"})
	pub, err := sys.OpenPublic("decoy-pass")
	if err != nil {
		t.Fatal(err)
	}
	hid, err := sys.OpenHidden("hidden-pass")
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(99))
	payload := map[*Volume][]byte{}
	var futs []*ioq.Future
	for _, vol := range []*Volume{pub, hid} {
		buf := make([]byte, 16*blockSize)
		rng.Read(buf)
		payload[vol] = buf
		for i := 0; i < 4; i++ {
			futs = append(futs, vol.SubmitWrite(uint64(i*4), buf[i*4*blockSize:(i+1)*4*blockSize]))
		}
	}
	if err := ioq.WaitAll(futs...); err != nil {
		t.Fatal(err)
	}
	callsBefore, flipsBefore := sys.Pool().CommitStats()
	if err := sys.FlushAll(); err != nil {
		t.Fatal(err)
	}
	calls, flips := sys.Pool().CommitStats()
	if calls-callsBefore != 1 || flips-flipsBefore != 1 {
		t.Fatalf("FlushAll cost %d commits / %d flips, want 1/1",
			calls-callsBefore, flips-flipsBefore)
	}
	if got := sys.Pool().PendingAllocations(); got != 0 {
		t.Fatalf("%d allocations still pending after FlushAll", got)
	}

	// The flushed writes are durable: a second System opened over the
	// same device (no Close, no further commit) reads them back.
	sys2, err := Open(dev, testConfig(51))
	if err != nil {
		t.Fatal(err)
	}
	pub2, err := sys2.OpenPublic("decoy-pass")
	if err != nil {
		t.Fatal(err)
	}
	hid2, err := sys2.OpenHidden("hidden-pass")
	if err != nil {
		t.Fatal(err)
	}
	for vol, vol2 := range map[*Volume]*Volume{pub: pub2, hid: hid2} {
		got := make([]byte, len(payload[vol]))
		if err := storage.ReadBlocks(vol2.Device(), 0, got); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, payload[vol]) {
			t.Fatalf("%s volume payload not durable across reopen", vol2.Mode())
		}
	}
	if err := sys.Close(); err != nil {
		t.Fatal(err)
	}

	// FlushAll on a system whose async API was never touched is a plain
	// commit — no queues, no panic.
	sys3, _ := newSystem(t, 52, nil)
	if err := sys3.FlushAll(); err != nil {
		t.Fatal(err)
	}
}

// TestRepeatedOpensShareOneQueue pins the queue-per-volume-id sharing:
// opening the same volume many times must not grow the scheduler's
// tracked queue set (a long-lived system would otherwise leak dead
// queues and FlushAll would quiesce every ghost).
func TestRepeatedOpensShareOneQueue(t *testing.T) {
	sys, _ := newSystem(t, 53, nil)
	defer func() {
		if err := sys.Close(); err != nil {
			t.Fatal(err)
		}
	}()
	buf := make([]byte, blockSize)
	for i := 0; i < 5; i++ {
		vol, err := sys.OpenPublic("decoy-pass")
		if err != nil {
			t.Fatal(err)
		}
		if err := vol.SubmitWrite(uint64(i), buf).Wait(); err != nil {
			t.Fatal(err)
		}
	}
	if got := len(sys.Scheduler().Queues()); got != 1 {
		t.Fatalf("scheduler tracks %d queues after 5 opens of one volume, want 1", got)
	}
}

func TestSubmitAfterCloseWithoutAsyncUse(t *testing.T) {
	sys, _ := newSystem(t, 83, nil)
	vol, err := sys.OpenPublic("decoy-pass")
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.Close(); err != nil {
		t.Fatal(err)
	}
	if err := vol.SubmitWrite(0, make([]byte, blockSize)).Wait(); err == nil {
		t.Fatal("submit after Close succeeded, want error")
	}
	if err := vol.Flush().Wait(); err == nil {
		t.Fatal("flush after Close succeeded, want error")
	}
}

// TestConcurrentCrashRecovery runs the concurrent workload over a
// power-cut simulation device, cuts power without a final quiesce, and
// requires mount-time recovery to land on exactly a committed state: the
// pool opens and validates, and every payload whose Flush completed
// before the cut is fully present.
func TestConcurrentCrashRecovery(t *testing.T) {
	const hpw = "hidden-pass"
	crash := storage.NewCrashDevice(storage.NewMemDevice(blockSize, 8192))
	cfg := testConfig(31)
	sys, err := Setup(crash, cfg, "decoy-pass", []string{hpw})
	if err != nil {
		t.Fatal(err)
	}

	pubFinal, hidFinal := concurrentWorkload(t, sys, hpw, 3, 40)
	if t.Failed() {
		return
	}
	// Workers finished: every final payload's Flush completed, so it is
	// durable even though the system was never shut down. Cut the power.
	if err := crash.PowerCut(prng.NewSource(1234)); err != nil {
		t.Fatal(err)
	}
	crash.Restart()

	re, err := Open(crash, cfg)
	if err != nil {
		t.Fatalf("reopening after power cut: %v", err)
	}
	if err := re.Pool().CheckIntegrity(); err != nil {
		t.Fatalf("integrity after crash recovery: %v", err)
	}
	rec := re.Recovery()
	if rec.TxID == 0 {
		t.Fatal("recovered to transaction 0")
	}
	rePub, err := re.OpenPublic("decoy-pass")
	if err != nil {
		t.Fatal(err)
	}
	reHid, err := re.OpenHidden(hpw)
	if err != nil {
		t.Fatalf("hidden volume lost after crash: %v", err)
	}
	check := func(vol *Volume, finals map[int][]byte, label string) {
		for w, want := range finals {
			got := make([]byte, len(want))
			if err := storage.ReadBlocks(vol.Device(), uint64(w*64), got); err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(got, want) {
				t.Fatalf("%s worker %d: flush-completed payload lost in crash", label, w)
			}
		}
	}
	check(rePub, pubFinal, "public")
	check(reHid, hidFinal, "hidden")
}

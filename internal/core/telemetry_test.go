package core

import (
	"strings"
	"testing"

	"mobiceal/internal/thinp"
)

// TestShardSummary pins the shard-imbalance fragment of the status
// one-liner: min..max free range, min/max balance ratio, total steals —
// and its absence when a snapshot carries no shard data.
func TestShardSummary(t *testing.T) {
	mk := func(shards ...thinp.ShardSnapshot) Telemetry {
		return Telemetry{Pool: thinp.PoolSnapshot{Shards: shards}}
	}
	cases := []struct {
		name string
		t    Telemetry
		want string
	}{
		{"empty", Telemetry{}, ""},
		{"balanced", mk(
			thinp.ShardSnapshot{Free: 100},
			thinp.ShardSnapshot{Free: 100},
		), "shards 2 free 100..100 bal 1.00 steals 0"},
		{"imbalanced with steals", mk(
			thinp.ShardSnapshot{Free: 40, Steals: 3},
			thinp.ShardSnapshot{Free: 100, Steals: 1},
		), "shards 2 free 40..100 bal 0.40 steals 4"},
		{"drained", mk(
			thinp.ShardSnapshot{Free: 0},
			thinp.ShardSnapshot{Free: 0},
		), "shards 2 free 0..0 bal 1.00 steals 0"},
	}
	for _, tc := range cases {
		if got := tc.t.ShardSummary(); got != tc.want {
			t.Errorf("%s: ShardSummary() = %q, want %q", tc.name, got, tc.want)
		}
	}
	// The one-liner embeds the fragment whenever shard data is present.
	tel := mk(thinp.ShardSnapshot{Free: 7, Steals: 2})
	if !strings.Contains(tel.String(), "shards 1 free 7..7 bal 1.00 steals 2") {
		t.Errorf("String() missing shard summary: %q", tel.String())
	}
	if strings.Contains((Telemetry{}).String(), "shards") {
		t.Errorf("String() shows shard summary without shard data")
	}
}

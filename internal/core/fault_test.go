package core

import (
	"bytes"
	"errors"
	"io"
	"sync"
	"testing"

	"mobiceal/internal/prng"
	"mobiceal/internal/storage"
)

func TestSetupPropagatesDeviceFaults(t *testing.T) {
	mem := storage.NewMemDevice(blockSize, 4096)
	faulty := storage.NewFaultDevice(mem)
	faulty.FailWritesAfter(2)
	if _, err := Setup(faulty, testConfig(30), "decoy", nil); !errors.Is(err, storage.ErrInjected) {
		t.Fatalf("Setup err = %v, want ErrInjected", err)
	}
}

func TestSystemSurvivesTransientWriteFault(t *testing.T) {
	mem := storage.NewMemDevice(blockSize, 4096)
	faulty := storage.NewFaultDevice(mem)
	sys, err := Setup(faulty, testConfig(31), "decoy", []string{"hidden"})
	if err != nil {
		t.Fatal(err)
	}
	vol, err := sys.OpenPublic("decoy")
	if err != nil {
		t.Fatal(err)
	}
	fs, err := vol.Format()
	if err != nil {
		t.Fatal(err)
	}
	f, err := fs.Create("doc")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteAt([]byte("before fault"), 0); err != nil {
		t.Fatal(err)
	}
	if err := fs.Sync(); err != nil {
		t.Fatal(err)
	}

	// Device fails mid-workload.
	faulty.FailWritesAfter(0)
	big := make([]byte, 50*blockSize)
	if _, err := f.WriteAt(big, blockSize); err == nil {
		t.Fatal("write during device failure succeeded")
	}

	// Device recovers: old data intact, new writes work.
	faulty.Disarm()
	got := make([]byte, len("before fault"))
	if _, err := f.ReadAt(got, 0); err != nil && !errors.Is(err, io.EOF) {
		t.Fatal(err)
	}
	if !bytes.Equal(got, []byte("before fault")) {
		t.Fatal("pre-fault data corrupted")
	}
	if _, err := f.WriteAt([]byte("after recovery"), 0); err != nil {
		t.Fatalf("write after recovery: %v", err)
	}
	if err := fs.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := sys.Commit(); err != nil {
		t.Fatal(err)
	}
	// Hidden volume unaffected throughout.
	if _, ok := sys.VerifyHidden("hidden"); !ok {
		t.Fatal("hidden volume lost after fault cycle")
	}
}

func TestConcurrentPublicAndHiddenUse(t *testing.T) {
	// The paper's modes are exclusive on a phone, but the library must
	// still be race-free when both volumes are driven concurrently (e.g.
	// by the experiment harness). Run with -race for full value.
	sys, _ := newSystem(t, 32, []string{"hidden"})
	pub, err := sys.OpenPublic("decoy-pass")
	if err != nil {
		t.Fatal(err)
	}
	pubFS, err := pub.Format()
	if err != nil {
		t.Fatal(err)
	}
	hid, err := sys.OpenHidden("hidden")
	if err != nil {
		t.Fatal(err)
	}
	hidFS, err := hid.Format()
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	errCh := make(chan error, 2)
	wg.Add(2)
	go func() {
		defer wg.Done()
		f, err := pubFS.Create("pub")
		if err != nil {
			errCh <- err
			return
		}
		data := make([]byte, 30*blockSize)
		for i := 0; i < 5; i++ {
			if _, err := f.WriteAt(data, int64(i)*int64(len(data))); err != nil {
				errCh <- err
				return
			}
		}
	}()
	go func() {
		defer wg.Done()
		f, err := hidFS.Create("hid")
		if err != nil {
			errCh <- err
			return
		}
		data := make([]byte, 20*blockSize)
		for i := 0; i < 5; i++ {
			if _, err := f.WriteAt(data, int64(i)*int64(len(data))); err != nil {
				errCh <- err
				return
			}
		}
	}()
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Fatal(err)
	}
	if err := sys.Commit(); err != nil {
		t.Fatal(err)
	}
	// Both file systems intact.
	if names := pubFS.List(); len(names) != 1 || names[0] != "pub" {
		t.Fatalf("public names = %v", names)
	}
	if names := hidFS.List(); len(names) != 1 || names[0] != "hid" {
		t.Fatalf("hidden names = %v", names)
	}
}

// Property: no third password — not decoy, not hidden — opens anything,
// across many random candidate passwords.
func TestPropertyUnrelatedPasswordsOpenNothing(t *testing.T) {
	sys, _ := newSystem(t, 33, []string{"hidden-A", "hidden-B"})
	pub, err := sys.OpenPublic("decoy-pass")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := pub.Format(); err != nil {
		t.Fatal(err)
	}
	src := prng.NewSource(34)
	for i := 0; i < 50; i++ {
		pwd := make([]byte, 8+src.Intn(8))
		for j := range pwd {
			pwd[j] = byte('!' + src.Intn(90))
		}
		candidate := string(pwd)
		if candidate == "decoy-pass" || candidate == "hidden-A" || candidate == "hidden-B" {
			continue
		}
		if _, ok := sys.VerifyHidden(candidate); ok {
			t.Fatalf("random password %q verified as hidden", candidate)
		}
		if _, err := sys.OpenHidden(candidate); !errors.Is(err, ErrBadPassword) {
			t.Fatalf("OpenHidden(%q) err = %v", candidate, err)
		}
		wrongPub, err := sys.OpenPublic(candidate)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := wrongPub.Mount(); err == nil {
			t.Fatalf("random password %q mounted the public volume", candidate)
		}
	}
}

func TestGCWithUnprotectedHiddenVolumeLosesData(t *testing.T) {
	// Negative-space test documenting the paper's requirement that GC run
	// in hidden mode: if the hidden volume is NOT protected, GC may
	// reclaim its blocks and destroy data. This is the failure mode the
	// design rule exists to prevent.
	sys, _ := newSystem(t, 35, []string{"hidden"})
	pub, err := sys.OpenPublic("decoy-pass")
	if err != nil {
		t.Fatal(err)
	}
	pubFS, err := pub.Format()
	if err != nil {
		t.Fatal(err)
	}
	pf, err := pubFS.Create("traffic")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := pf.WriteAt(make([]byte, 400*blockSize), 0); err != nil {
		t.Fatal(err)
	}
	hid, err := sys.OpenHidden("hidden")
	if err != nil {
		t.Fatal(err)
	}
	hidFS, err := hid.Format()
	if err != nil {
		t.Fatal(err)
	}
	hf, err := hidFS.Create("data")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := hf.WriteAt(make([]byte, 30*blockSize), 0); err != nil {
		t.Fatal(err)
	}
	if err := hidFS.Sync(); err != nil {
		t.Fatal(err)
	}
	before, err := sys.Pool().MappedBlocks(hid.ID())
	if err != nil {
		t.Fatal(err)
	}
	// GC WITHOUT protecting the hidden volume.
	if _, err := sys.GC(nil, prng.NewSource(36)); err != nil {
		t.Fatal(err)
	}
	after, err := sys.Pool().MappedBlocks(hid.ID())
	if err != nil {
		t.Fatal(err)
	}
	if after >= before {
		t.Fatalf("unprotected GC reclaimed nothing from the hidden volume (%d -> %d); "+
			"the protection requirement would be vacuous", before, after)
	}
}

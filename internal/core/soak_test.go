package core

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"testing"

	"mobiceal/internal/minifs"
	"mobiceal/internal/prng"
)

// Soak test: a long random sequence of realistic operations — public and
// hidden writes, file removals, GC passes, commits, reboots (reopen from
// disk) — with a shadow model of every file's content. Catches interaction
// bugs no focused test would (dummy writes landing during GC, reopen after
// partial workloads, verifier survival across epochs).
func TestSoakRandomOperations(t *testing.T) {
	if testing.Short() {
		t.Skip("long soak")
	}
	const (
		seed   = 0x50414b
		rounds = 400
	)
	src := prng.NewSource(seed)
	sys, dev := newSystem(t, seed, []string{"hidden"})
	pub, err := sys.OpenPublic("decoy-pass")
	if err != nil {
		t.Fatal(err)
	}
	pubFS, err := pub.Format()
	if err != nil {
		t.Fatal(err)
	}
	hid, err := sys.OpenHidden("hidden")
	if err != nil {
		t.Fatal(err)
	}
	hidFS, err := hid.Format()
	if err != nil {
		t.Fatal(err)
	}
	hiddenID := hid.ID()

	type world struct {
		fs     *minifs.FS
		shadow map[string][]byte
	}
	worlds := map[string]*world{
		"pub": {fs: pubFS, shadow: map[string][]byte{}},
		"hid": {fs: hidFS, shadow: map[string][]byte{}},
	}

	reopen := func() {
		if err := sys.Commit(); err != nil {
			t.Fatal(err)
		}
		sys2, err := Open(dev, Config{
			KDFIter: 16,
			Entropy: prng.NewSeededEntropy(src.Uint64()),
			Seed:    src.Uint64(),
			SeedSet: true,
		})
		if err != nil {
			t.Fatalf("reopen: %v", err)
		}
		sys = sys2
		p, err := sys.OpenPublic("decoy-pass")
		if err != nil {
			t.Fatal(err)
		}
		if worlds["pub"].fs, err = p.Mount(); err != nil {
			t.Fatalf("public remount: %v", err)
		}
		h, err := sys.OpenHidden("hidden")
		if err != nil {
			t.Fatalf("hidden reopen: %v", err)
		}
		if worlds["hid"].fs, err = h.Mount(); err != nil {
			t.Fatalf("hidden remount: %v", err)
		}
	}

	fileCounter := 0
	for round := 0; round < rounds; round++ {
		wName := "pub"
		if src.Float64() < 0.35 {
			wName = "hid"
		}
		w := worlds[wName]
		switch op := src.Intn(10); {
		case op < 5: // write a new or existing file
			var name string
			if len(w.shadow) > 0 && src.Float64() < 0.4 {
				name = anyKey(w.shadow, src)
			} else {
				fileCounter++
				name = fmt.Sprintf("%s-%04d", wName, fileCounter)
			}
			size := (1 + src.Intn(12)) * blockSize / 2
			data := make([]byte, size)
			if _, err := src.Read(data); err != nil {
				t.Fatal(err)
			}
			f, err := w.fs.Open(name)
			if err != nil {
				if f, err = w.fs.Create(name); err != nil {
					if errors.Is(err, minifs.ErrNoSpace) {
						continue
					}
					t.Fatalf("round %d create: %v", round, err)
				}
			}
			if _, err := f.WriteAt(data, 0); err != nil {
				t.Fatalf("round %d write: %v", round, err)
			}
			if err := f.Truncate(int64(size)); err != nil {
				t.Fatal(err)
			}
			w.shadow[name] = data
		case op < 7: // remove
			if len(w.shadow) == 0 {
				continue
			}
			name := anyKey(w.shadow, src)
			if err := w.fs.Remove(name); err != nil {
				t.Fatalf("round %d remove: %v", round, err)
			}
			delete(w.shadow, name)
		case op == 7: // sync + commit
			if err := w.fs.Sync(); err != nil {
				t.Fatal(err)
			}
			if err := sys.Commit(); err != nil {
				t.Fatal(err)
			}
		case op == 8 && round%50 == 25: // GC (hidden mode rule: protect hidden)
			for _, w2 := range worlds {
				if err := w2.fs.Sync(); err != nil {
					t.Fatal(err)
				}
			}
			if _, err := sys.GC([]int{hiddenID}, prng.NewSource(src.Uint64())); err != nil {
				t.Fatalf("round %d gc: %v", round, err)
			}
		case op == 9 && round%100 == 75: // reboot
			for _, w2 := range worlds {
				if err := w2.fs.Sync(); err != nil {
					t.Fatal(err)
				}
			}
			reopen()
		}
	}

	// Final verification: every shadowed file reads back exactly, and all
	// structural invariants hold.
	for _, w2 := range worlds {
		if err := w2.fs.Sync(); err != nil {
			t.Fatal(err)
		}
		if err := w2.fs.CheckIntegrity(); err != nil {
			t.Fatalf("fs integrity after soak: %v", err)
		}
	}
	if err := sys.Pool().CheckIntegrity(); err != nil {
		t.Fatalf("pool integrity after soak: %v", err)
	}
	reopen()
	if err := sys.Pool().CheckIntegrity(); err != nil {
		t.Fatalf("pool integrity after reopen: %v", err)
	}
	for wName, w := range worlds {
		if got, want := len(w.fs.List()), len(w.shadow); got != want {
			t.Fatalf("%s: %d files on disk, %d in shadow", wName, got, want)
		}
		for name, want := range w.shadow {
			f, err := w.fs.Open(name)
			if err != nil {
				t.Fatalf("%s/%s: %v", wName, name, err)
			}
			got := make([]byte, len(want))
			if _, err := f.ReadAt(got, 0); err != nil && !errors.Is(err, io.EOF) {
				t.Fatal(err)
			}
			if !bytes.Equal(got, want) {
				t.Fatalf("%s/%s: content mismatch after soak", wName, name)
			}
		}
	}
}

func anyKey(m map[string][]byte, src *prng.Source) string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	// Map iteration order is random; sort-free deterministic pick needs a
	// stable order. Keys are unique names, so pick by index after a simple
	// insertion sort.
	for i := 1; i < len(keys); i++ {
		for j := i; j > 0 && keys[j] < keys[j-1]; j-- {
			keys[j], keys[j-1] = keys[j-1], keys[j]
		}
	}
	return keys[src.Intn(len(keys))]
}

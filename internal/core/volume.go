package core

import (
	"fmt"
	"sync"

	"mobiceal/internal/dm"
	"mobiceal/internal/ioq"
	"mobiceal/internal/minifs"
	"mobiceal/internal/storage"
	"mobiceal/internal/thinp"
)

// Mode distinguishes the two operating modes of a MobiCeal device.
type Mode int

// Operating modes.
const (
	// ModePublic processes non-sensitive data on the decoy-encrypted V1.
	ModePublic Mode = iota + 1
	// ModeHidden processes sensitive data on a hidden volume.
	ModeHidden
)

// String implements fmt.Stringer.
func (m Mode) String() string {
	switch m {
	case ModePublic:
		return "public"
	case ModeHidden:
		return "hidden"
	default:
		return fmt.Sprintf("Mode(%d)", int(m))
	}
}

// Volume is an opened, decrypted view of one virtual volume. Its Device is
// the plaintext block device a file system mounts on. The Submit*/Flush
// methods (async.go) provide the asynchronous, thread-safe path into the
// same view.
type Volume struct {
	sys  *System
	id   int
	mode Mode
	dev  storage.Device
	// thin is the pool-level handle under the crypt view; the async path
	// re-homes its allocation affinity on the submission queue's index once
	// the queue registers.
	thin *thinp.Thin

	qOnce sync.Once
	q     *ioq.VolumeQueue
}

// ID returns the thin id backing this volume (V1 for public).
func (v *Volume) ID() int { return v.id }

// Mode returns whether this is the public or a hidden volume.
func (v *Volume) Mode() Mode { return v.mode }

// Device returns the decrypted block device view.
func (v *Volume) Device() storage.Device { return v.dev }

// Format creates a fresh minifs file system on the volume.
func (v *Volume) Format() (*minifs.FS, error) {
	fs, err := minifs.Format(v.dev, 4096)
	if err != nil {
		return nil, fmt.Errorf("core: formatting %s volume: %w", v.mode, err)
	}
	return fs, nil
}

// Mount opens the volume's file system. A failed mount on the public volume
// is how the boot flow detects a wrong password (paper Sec. V-B: "If a
// valid Ext4 file system can be mounted, the password is correct").
func (v *Volume) Mount() (*minifs.FS, error) {
	fs, err := minifs.Mount(v.dev)
	if err != nil {
		return nil, fmt.Errorf("core: mounting %s volume: %w", v.mode, err)
	}
	return fs, nil
}

// OpenPublic returns the public volume decrypted under password. No
// verification happens here: with a wrong password the view decrypts to
// garbage and Mount fails, exactly like Android FDE's probe-mount.
func (s *System) OpenPublic(password string) (*Volume, error) {
	key, err := s.footer.DeriveKey(password)
	if err != nil {
		return nil, fmt.Errorf("core: deriving public key: %w", err)
	}
	cipher, err := cipherFor(key)
	if err != nil {
		return nil, err
	}
	thin, err := s.pool.Thin(PublicVolumeID)
	if err != nil {
		return nil, err
	}
	return &Volume{
		sys:  s,
		id:   PublicVolumeID,
		mode: ModePublic,
		dev:  dm.NewCrypt(thin, cipher, s.cfg.Meter),
		thin: thin,
	}, nil
}

// OpenHidden verifies password against its derived volume's verifier block
// and, on success, returns the hidden volume (minus the verifier block) as
// a plaintext device. It fails with ErrBadPassword otherwise — the caller
// cannot distinguish "wrong password" from "there is no hidden volume",
// which is the point.
func (s *System) OpenHidden(password string) (*Volume, error) {
	if s.cfg.NumVolumes < 2 {
		return nil, ErrBadPassword
	}
	id := s.footer.HiddenIndex(password)
	ok, err := s.checkVerifier(id, password)
	if err != nil {
		return nil, err
	}
	if !ok {
		return nil, ErrBadPassword
	}
	key, err := s.footer.DeriveKey(password)
	if err != nil {
		return nil, fmt.Errorf("core: deriving hidden key: %w", err)
	}
	cipher, err := cipherFor(key)
	if err != nil {
		return nil, err
	}
	thin, err := s.pool.Thin(id)
	if err != nil {
		return nil, err
	}
	crypt := dm.NewCrypt(thin, cipher, s.cfg.Meter)
	// Virtual block 0 is the verifier; the file system lives from block 1.
	fsDev, err := storage.NewSliceDevice(crypt, 1, crypt.NumBlocks()-1)
	if err != nil {
		return nil, fmt.Errorf("core: hidden volume view: %w", err)
	}
	return &Volume{sys: s, id: id, mode: ModeHidden, dev: fsDev, thin: thin}, nil
}

// VerifyHidden reports whether password opens a hidden volume, without
// opening it — the Vold switching function's check (Sec. V-B), which
// returns -1 on mismatch.
func (s *System) VerifyHidden(password string) (int, bool) {
	if s.cfg.NumVolumes < 2 {
		return -1, false
	}
	id := s.footer.HiddenIndex(password)
	ok, err := s.checkVerifier(id, password)
	if err != nil || !ok {
		return -1, false
	}
	return id, true
}

package core

import (
	"fmt"
	"strings"

	"mobiceal/internal/ioq"
	"mobiceal/internal/storage"
	"mobiceal/internal/thinp"
)

// Telemetry is a point-in-time snapshot of the system's whole observability
// surface: pool health, thin-pool metrics (allocation, commit machinery,
// noise stage, event log), the I/O scheduler, and the accounting wraps
// around the metadata and data regions.
//
// The surface is memory-only — nothing in it is ever persisted, so a seized
// device carries no telemetry — and deniability-safe by construction: every
// counter is recorded either at a choke point that dummy noise and hidden
// traffic traverse identically (pool provisioning, the shared data device)
// or against machinery all volumes share (scheduler, commit door). There
// are no per-volume numbers and no dummy/real split anywhere in this
// struct; see DESIGN.md "Observability" for the full argument and the
// telemetry-deniability tests that pin it.
type Telemetry struct {
	// Mode and Reason mirror Health: the pool's health-ladder position.
	Mode   string `json:"mode"`
	Reason string `json:"reason,omitempty"`
	// TxID is the last durable metadata transaction; AllocatedBlocks and
	// FreeBlocks split the data region (dm-thin's status line numbers).
	TxID            uint64 `json:"tx_id"`
	AllocatedBlocks uint64 `json:"allocated_blocks"`
	FreeBlocks      uint64 `json:"free_blocks"`

	Pool thinp.PoolSnapshot  `json:"pool"`
	IO   ioq.MetricsSnapshot `json:"io"`

	Data storage.DeviceSnapshot `json:"data"`
	Meta storage.DeviceSnapshot `json:"meta"`

	// File is the base device's syscall accounting, present only when the
	// system sits on a backend that reports one (a FileDevice): vectored
	// transfer calls, segments per call, retry-loop interventions, and the
	// direct-mode flag. Like everything else here it is aggregate per
	// device — one file serves every volume, so the numbers attribute
	// nothing.
	File *storage.FileSyscalls `json:"file,omitempty"`
}

// Telemetry snapshots the system's observability surface. Counters are
// individually atomic; a snapshot taken against live traffic may be off by
// the operations in flight.
func (s *System) Telemetry() Telemetry {
	mode, reason := s.pool.Status()
	t := Telemetry{
		Mode:            mode.String(),
		Reason:          reason,
		TxID:            s.pool.TransactionID(),
		AllocatedBlocks: s.pool.AllocatedBlocks(),
		FreeBlocks:      s.pool.FreeBlocks(),
		Pool:            s.pool.MetricsSnapshot(),
		IO:              s.Scheduler().MetricsSnapshot(),
		Data:            s.dataStats.Metrics().Snapshot(),
		Meta:            s.metaStats.Metrics().Snapshot(),
	}
	if rep, ok := s.dev.(storage.SyscallReporter); ok {
		sc := rep.Syscalls()
		t.File = &sc
	}
	return t
}

// String renders the snapshot as a dm-thin-`status`-style one-liner:
//
//	rw tx 7 data 120/4096 commits 12/3 alloc(n=120 mean=1µs p50≤2µs p99≤4µs)
//	io sub 240 done 240 qd 0 inflight 0 merge 0.42 fail 0 dev w 140/573440
//
// Fixed-position fields first (mode, transaction, space), then the
// machinery gauges a human scans for.
func (t Telemetry) String() string {
	var b strings.Builder
	mode := t.Mode
	switch mode {
	case "write":
		mode = "rw"
	case "read-only":
		mode = "ro"
	}
	fmt.Fprintf(&b, "%s tx %d data %d/%d", mode, t.TxID,
		t.AllocatedBlocks, t.AllocatedBlocks+t.FreeBlocks)
	if t.Reason != "" {
		fmt.Fprintf(&b, " (%s)", t.Reason)
	}
	fmt.Fprintf(&b, " commits %d/%d alloc(%s)",
		t.Pool.CommitCalls, t.Pool.CommitFlips, t.Pool.AllocLat)
	fmt.Fprintf(&b, " io sub %d done %d qd %d inflight %d merge %.2f fail %d",
		t.IO.Submitted, t.IO.Completed, t.IO.QueueDepth, t.IO.InFlight,
		t.IO.MergeRatio(), t.IO.Failures)
	if t.IO.WindowMax > 1 {
		fmt.Fprintf(&b, " win %d/%d", t.IO.WindowOccupancy, t.IO.WindowMax)
	}
	fmt.Fprintf(&b, " dev w %d/%d", t.Data.WriteBlocks, t.Data.BytesWrite)
	if s := t.ShardSummary(); s != "" {
		fmt.Fprintf(&b, " %s", s)
	}
	if f := t.File; f != nil {
		mode := "buffered"
		if f.Direct {
			mode = "direct"
		}
		fmt.Fprintf(&b, " file %s preadv %d/%d pwritev %d/%d",
			mode, f.PreadvCalls, f.ReadSegs, f.PwritevCalls, f.WriteSegs)
	}
	return b.String()
}

// ShardSummary condenses the per-shard allocation gauges into one scannable
// fragment: shard count, min..max free blocks, the min/max free balance
// ratio (1.00 = perfectly even, small = one shard nearly drained while
// another is full), and total cross-shard steals. Empty when the snapshot
// carries no shard data (old snapshots, single-shard pools with no gauges).
func (t Telemetry) ShardSummary() string {
	shards := t.Pool.Shards
	if len(shards) == 0 {
		return ""
	}
	minFree, maxFree := shards[0].Free, shards[0].Free
	var steals uint64
	for _, sh := range shards {
		if sh.Free < minFree {
			minFree = sh.Free
		}
		if sh.Free > maxFree {
			maxFree = sh.Free
		}
		steals += sh.Steals
	}
	bal := 1.0
	if maxFree > 0 {
		bal = float64(minFree) / float64(maxFree)
	}
	return fmt.Sprintf("shards %d free %d..%d bal %.2f steals %d",
		len(shards), minFree, maxFree, bal, steals)
}

package core

import (
	"bytes"
	"errors"
	"io"
	"testing"

	"mobiceal/internal/prng"
	"mobiceal/internal/storage"
	"mobiceal/internal/thinp"
)

// The paper's Q3 (Sec. IV-A): "How can the system prevent the public data
// from overwriting the hidden data?" — the global bitmap must protect
// hidden blocks even when the public volume fills the entire pool.
func TestPublicTrafficNeverOverwritesHiddenData(t *testing.T) {
	sys, _ := newSystem(t, 40, []string{"hidden"})
	hid, err := sys.OpenHidden("hidden")
	if err != nil {
		t.Fatal(err)
	}
	hidFS, err := hid.Format()
	if err != nil {
		t.Fatal(err)
	}
	secret := make([]byte, 64*blockSize)
	if _, err := prng.NewSource(41).Read(secret); err != nil {
		t.Fatal(err)
	}
	hf, err := hidFS.Create("precious")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := hf.WriteAt(secret, 0); err != nil {
		t.Fatal(err)
	}
	if err := hidFS.Sync(); err != nil {
		t.Fatal(err)
	}

	// Public mode (which knows nothing about the hidden volume) writes
	// until the pool is completely exhausted.
	pub, err := sys.OpenPublic("decoy-pass")
	if err != nil {
		t.Fatal(err)
	}
	pubFS, err := pub.Format()
	if err != nil {
		t.Fatal(err)
	}
	chunk := make([]byte, 16*blockSize)
	var off int64
	fill, err := pubFS.Create("filler")
	if err != nil {
		t.Fatal(err)
	}
	for {
		if _, err := fill.WriteAt(chunk, off); err != nil {
			if errors.Is(err, thinp.ErrNoSpace) || errors.Is(err, errMinifsNoSpace()) {
				break
			}
			// minifs wraps pool errors; accept any failure once the pool
			// reports full.
			if sys.Pool().FreeBlocks() == 0 {
				break
			}
			t.Fatal(err)
		}
		off += int64(len(chunk))
	}
	if sys.Pool().FreeBlocks() > uint64(len(chunk)/blockSize) {
		t.Fatalf("pool not nearly exhausted: %d free", sys.Pool().FreeBlocks())
	}

	// The hidden data survived the public volume's starvation of the pool.
	hid2, err := sys.OpenHidden("hidden")
	if err != nil {
		t.Fatal(err)
	}
	hidFS2, err := hid2.Mount()
	if err != nil {
		t.Fatal(err)
	}
	hf2, err := hidFS2.Open("precious")
	if err != nil {
		t.Fatal(err)
	}
	got := make([]byte, len(secret))
	if _, err := hf2.ReadAt(got, 0); err != nil && !errors.Is(err, io.EOF) {
		t.Fatal(err)
	}
	if !bytes.Equal(secret, got) {
		t.Fatal("public traffic overwrote hidden data — the Q3 protection failed")
	}
}

// errMinifsNoSpace gives the test above a stable sentinel reference without
// importing minifs solely for its error.
func errMinifsNoSpace() error { return errNoSpaceProbe }

var errNoSpaceProbe = errors.New("probe")

// Crash consistency: changes written but not committed vanish on reopen
// (dm-thin transaction semantics), and everything from the last commit is
// intact — no torn state the adversary or the user could trip over.
func TestCrashBeforeCommitRollsBack(t *testing.T) {
	sys, dev := newSystem(t, 42, []string{"hidden"})
	pub, err := sys.OpenPublic("decoy-pass")
	if err != nil {
		t.Fatal(err)
	}
	pubFS, err := pub.Format()
	if err != nil {
		t.Fatal(err)
	}
	f, err := pubFS.Create("durable")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteAt([]byte("committed state"), 0); err != nil {
		t.Fatal(err)
	}
	if err := pubFS.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := sys.Commit(); err != nil {
		t.Fatal(err)
	}
	committedAlloc := sys.Pool().AllocatedBlocks()

	// More writes, NOT committed: the crash erases them.
	g, err := pubFS.Create("ephemeral")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := g.WriteAt(make([]byte, 30*blockSize), 0); err != nil {
		t.Fatal(err)
	}
	// No Sync/Commit — power cut. Reopen from the device.
	sys2, err := Open(dev, Config{
		KDFIter: 16,
		Entropy: prng.NewSeededEntropy(43),
		Seed:    43,
		SeedSet: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := sys2.Pool().AllocatedBlocks(); got != committedAlloc {
		t.Fatalf("allocated after crash = %d, want %d", got, committedAlloc)
	}
	pub2, err := sys2.OpenPublic("decoy-pass")
	if err != nil {
		t.Fatal(err)
	}
	fs2, err := pub2.Mount()
	if err != nil {
		t.Fatal(err)
	}
	names := fs2.List()
	if len(names) != 1 || names[0] != "durable" {
		t.Fatalf("names after crash = %v", names)
	}
}

// The basic MobiCeal scheme (Sec. IV-B) is the n=2 special case: one public
// volume plus one volume that is either hidden or dummy.
func TestBasicSchemeTwoVolumes(t *testing.T) {
	// With deniability: V2 is the hidden volume.
	dev := storage.NewMemDevice(blockSize, 4096)
	cfg := testConfig(44)
	cfg.NumVolumes = 2
	sys, err := Setup(dev, cfg, "decoy", []string{"hidden"})
	if err != nil {
		t.Fatal(err)
	}
	vol, err := sys.OpenHidden("hidden")
	if err != nil {
		t.Fatal(err)
	}
	if vol.ID() != 2 {
		t.Fatalf("hidden id = %d, want 2 (only possible slot)", vol.ID())
	}
	if _, err := vol.Format(); err != nil {
		t.Fatal(err)
	}

	// Without deniability: V2 is a dummy volume; no password opens it.
	dev2 := storage.NewMemDevice(blockSize, 4096)
	cfg2 := testConfig(45)
	cfg2.NumVolumes = 2
	sys2, err := Setup(dev2, cfg2, "decoy", nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sys2.OpenHidden("anything"); !errors.Is(err, ErrBadPassword) {
		t.Fatalf("err = %v", err)
	}
	// Both devices expose the same volume-count surface: an adversary
	// cannot tell them apart by shape.
	if sys.NumVolumes() != sys2.NumVolumes() {
		t.Fatal("volume counts differ between hidden and dummy setups")
	}
	m1, err := sys.Pool().MappedBlocks(2)
	if err != nil {
		t.Fatal(err)
	}
	// sys's V2 was formatted, so it has more than the single cover block —
	// but right after Setup (before Format) both had exactly one.
	m2, err := sys2.Pool().MappedBlocks(2)
	if err != nil {
		t.Fatal(err)
	}
	if m2 != 1 {
		t.Fatalf("dummy V2 mapped = %d, want 1 cover block", m2)
	}
	_ = m1
}

// Dummy volumes must also be able to receive GC and continue absorbing
// dummy writes afterwards (space reclamation keeps the system usable
// long-term, Sec. IV-D).
func TestDummySpaceReusableAfterGC(t *testing.T) {
	sys, _ := newSystem(t, 46, []string{"hidden"})
	pub, err := sys.OpenPublic("decoy-pass")
	if err != nil {
		t.Fatal(err)
	}
	pubFS, err := pub.Format()
	if err != nil {
		t.Fatal(err)
	}
	hid, err := sys.OpenHidden("hidden")
	if err != nil {
		t.Fatal(err)
	}
	f, err := pubFS.Create("wave1")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteAt(make([]byte, 400*blockSize), 0); err != nil {
		t.Fatal(err)
	}
	dummyBefore := sys.Pool().DummyBlocksWritten()
	if dummyBefore == 0 {
		t.Skip("seed produced no dummy traffic")
	}
	freeBefore := sys.Pool().FreeBlocks()
	report, err := sys.GC([]int{hid.ID()}, prng.NewSource(47))
	if err != nil {
		t.Fatal(err)
	}
	if sys.Pool().FreeBlocks() != freeBefore+report.Reclaimed {
		t.Fatal("GC did not return blocks to the free pool")
	}
	// Another wave of public writes triggers fresh dummy writes into the
	// reclaimed space.
	g, err := pubFS.Create("wave2")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := g.WriteAt(make([]byte, 200*blockSize), 0); err != nil {
		t.Fatal(err)
	}
	if sys.Pool().DummyBlocksWritten() <= dummyBefore {
		t.Fatal("no new dummy writes after GC")
	}
}

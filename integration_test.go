package mobiceal_test

import (
	"testing"
	"time"

	"mobiceal"
	"mobiceal/internal/android"
	"mobiceal/internal/core"
	"mobiceal/internal/experiments"
	"mobiceal/internal/prng"
	"mobiceal/internal/storage"
	"mobiceal/internal/vclock"
)

// End-to-end integration across every layer: a phone lifecycle driven
// through Vold, snapshots taken around a hidden-mode session, the adversary
// analyzing them, and structural integrity verified — the complete paper
// scenario in one test.
func TestEndToEndPhoneSessionUnderSurveillance(t *testing.T) {
	var clock vclock.Clock
	meter := vclock.NewMeter(&clock, vclock.Nexus4())
	dev := storage.NewMemDevice(4096, 8192)
	phone := android.NewMobiCealPhone(dev, core.Config{
		NumVolumes: 8,
		KDFIter:    8,
		Entropy:    prng.NewSeededEntropy(900),
		Seed:       900,
		SeedSet:    true,
	}, meter, mobiceal.NominalNexus4Userdata)
	vold := android.NewVold(phone)

	// Provision through the vdc surface, boot, bring up the framework.
	if resp, err := vold.Command("cryptfs pde wipe decoy 8 hidden"); err != nil || resp != "200 0 OK" {
		t.Fatalf("wipe: (%q, %v)", resp, err)
	}
	if resp, err := vold.Command("cryptfs checkpw decoy"); err != nil || resp != "200 0 OK" {
		t.Fatalf("checkpw: (%q, %v)", resp, err)
	}
	if err := phone.StartFramework(); err != nil {
		t.Fatal(err)
	}

	// Checkpoint 1: the device is imaged.
	if err := phone.System().Commit(); err != nil {
		t.Fatal(err)
	}
	snap1 := dev.Snapshot()

	// Hidden session via the screen lock, under the 10-second budget.
	sw := vclock.NewStopwatch(&clock)
	if resp, err := vold.Command("cryptfs pde switch hidden"); err != nil || resp != "200 0 OK" {
		t.Fatalf("switch: (%q, %v)", resp, err)
	}
	if sw.Elapsed() >= 10*time.Second {
		t.Fatalf("switch took %v", sw.Elapsed())
	}
	hidFS := phone.DataFS()
	f, err := hidFS.Create("evidence")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteAt(make([]byte, 25*4096), 0); err != nil {
		t.Fatal(err)
	}
	if err := hidFS.Sync(); err != nil {
		t.Fatal(err)
	}

	// Exit (reboot), then ordinary public use.
	if err := phone.ExitHidden("decoy"); err != nil {
		t.Fatal(err)
	}
	if err := phone.StartFramework(); err != nil {
		t.Fatal(err)
	}
	pubFS := phone.DataFS()
	g, err := pubFS.Create("holiday-photos")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := g.WriteAt(make([]byte, 120*4096), 0); err != nil {
		t.Fatal(err)
	}
	if err := pubFS.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := phone.System().Commit(); err != nil {
		t.Fatal(err)
	}

	// Checkpoint 2: imaged again; owner discloses the decoy password.
	snap2 := dev.Snapshot()
	report, err := mobiceal.AnalyzeSnapshots(dev, snap1, snap2)
	if err != nil {
		t.Fatal(err)
	}
	if len(report.Unaccountable) != 0 {
		t.Fatalf("%d unaccountable changes across the session", len(report.Unaccountable))
	}
	if report.NonRandomChanged != 0 {
		t.Fatalf("%d plaintext-looking changes", report.NonRandomChanged)
	}
	if report.NonPublicChanged == 0 {
		t.Fatal("hidden session left no (deniable) trace at all — snapshots broken?")
	}

	// Structure stays sound, and the hidden data is still there.
	if err := phone.System().Pool().CheckIntegrity(); err != nil {
		t.Fatalf("pool integrity: %v", err)
	}
	if err := phone.StartFramework(); err != nil {
		t.Fatal(err)
	}
	if err := phone.SwitchToHidden("hidden"); err != nil {
		t.Fatal(err)
	}
	names := phone.DataFS().List()
	if len(names) != 1 || names[0] != "evidence" {
		t.Fatalf("hidden volume lists %v", names)
	}
}

func TestNewStackRejectsUnknownName(t *testing.T) {
	if _, err := experiments.NewStack("no-such-stack", experiments.Fig4Config{}); err == nil {
		t.Fatal("unknown stack accepted")
	}
}

// Package mobiceal is the public API of the MobiCeal reproduction — a
// plausibly deniable encryption (PDE) system for block storage that
// defends against multi-snapshot adversaries (Chang et al., "MobiCeal:
// Towards Secure and Practical Plausibly Deniable Encryption on Mobile
// Devices", DSN 2018).
//
// A MobiCeal device carves one block device into pool metadata, a thin-
// provisioned data area and a 16 KB crypto footer. It exposes n virtual
// volumes: V1 is the public volume (decoy password), a secret subset are
// hidden volumes (one per hidden password, index derived from the
// password), and the rest are dummy volumes that absorb the system's
// dummy writes. Random block allocation plus dummy writes make the changes
// caused by hidden-volume writes deniable across storage snapshots.
//
// Quick start:
//
//	dev := mobiceal.NewMemDevice(4096, 1<<20)
//	sys, err := mobiceal.Setup(dev, mobiceal.Config{NumVolumes: 8},
//	    "decoy-password", []string{"hidden-password"})
//	pub, _ := sys.OpenPublic("decoy-password")
//	fs, _ := pub.Format()                    // mount any block FS on top
//	hid, _ := sys.OpenHidden("hidden-password")
//
// See the examples directory for complete scenarios, internal/experiments
// for the paper's evaluation harness, and DESIGN.md for the architecture.
package mobiceal

import (
	"fmt"
	"io"

	"mobiceal/internal/adversary"
	"mobiceal/internal/android"
	"mobiceal/internal/core"
	"mobiceal/internal/ioq"
	"mobiceal/internal/minifs"
	"mobiceal/internal/obs"
	"mobiceal/internal/storage"
	"mobiceal/internal/thinp"
	"mobiceal/internal/vclock"
)

// Core types re-exported from the implementation packages.
type (
	// Config configures Setup and Open; the zero value selects the
	// paper's defaults (8 volumes, lambda=1, x=50, PBKDF2 2000 rounds).
	Config = core.Config
	// System is an initialized MobiCeal device.
	System = core.System
	// Volume is an opened, decrypted virtual volume.
	Volume = core.Volume
	// Mode distinguishes public from hidden operation.
	Mode = core.Mode
	// GCReport summarizes a garbage-collection pass.
	GCReport = core.GCReport
	// Device is the block-device abstraction everything runs on.
	Device = storage.Device
	// FS is the bundled minimal block file system (any block FS works;
	// this one ships for the examples and tools).
	FS = minifs.FS
	// File is an open file on FS.
	File = minifs.File
	// Snapshot is a point-in-time full device image — what a
	// multi-snapshot adversary captures.
	Snapshot = storage.Snapshot
	// DiffReport is the adversary's correlation of two snapshots.
	DiffReport = adversary.DiffReport
	// Phone simulates the Android integration: boot, screen-lock entrance,
	// fast switching with side-channel isolation.
	Phone = android.MobiCealPhone
	// Future is the completion handle of an asynchronous volume request
	// (Volume.SubmitRead / SubmitWrite / SubmitDiscard / Flush). A
	// completed Flush guarantees everything submitted to that volume
	// before it is durable; concurrent flushes across volumes fold into
	// shared group commits.
	Future = ioq.Future
	// Health is System.Health()'s snapshot of the degradation state: the
	// pool's health-ladder mode plus the I/O scheduler's fault counters.
	Health = core.Health
	// Telemetry is System.Telemetry()'s snapshot of the full observability
	// surface: pool health and space, commit/allocation metrics with
	// latency histograms, scheduler gauges and span timings, and the
	// region devices' traffic accounting. Memory-only and volume-blind by
	// construction (see DESIGN.md "Observability"); String() renders the
	// dm-thin-status-style one-liner that `mobiceal status` prints.
	Telemetry = core.Telemetry
	// PoolMode is the pool health ladder: Write → OutOfDataSpace →
	// ReadOnly → Fail, one-way except the documented space recovery.
	PoolMode = thinp.PoolMode
	// RetryPolicy tunes Config.Retry, the scheduler's transient-fault
	// retry/backoff behaviour.
	RetryPolicy = ioq.RetryPolicy
	// FlakyDevice injects deterministic transient/medium faults and
	// latency spikes into a wrapped device, for resilience testing.
	FlakyDevice = storage.FlakyDevice
	// FlakyOptions seeds and rates a FlakyDevice.
	FlakyOptions = storage.FlakyOptions
	// FileOptions configures CreateImageWith/OpenImageWith: direct
	// (O_DIRECT) mode and the strict-alignment contract.
	FileOptions = storage.FileOptions
	// FileSyscalls is the file backend's syscall accounting, surfaced in
	// Telemetry.File on file-backed systems.
	FileSyscalls = storage.FileSyscalls
	// FlightRecorder is the system's request-lifecycle flight recorder: a
	// bounded, memory-only ring of blktrace-style causal events (Q/G/M/D/C
	// plus the thin-pool stages). Obtain it with System.FlightRecorder();
	// it starts disabled and costs one atomic load per choke point while
	// off. Event payloads are deniability-safe: stage, op kind, block
	// count, error class — never block addresses or volume identities.
	FlightRecorder = obs.FlightRecorder
	// FlightEvent is one decoded lifecycle event from the flight recorder.
	FlightEvent = obs.FlightEvent
	// TraceReport is AnalyzeTrace's btt-style analysis of an event window:
	// Q2D/D2C/Q2C per op kind, queue-depth and in-flight timelines, merge
	// chains and commit-round attribution.
	TraceReport = obs.TraceReport
)

// AnalyzeTrace runs the btt-style offline analysis over a flight-recorder
// event window (live snapshot or JSONL replay).
func AnalyzeTrace(events []FlightEvent) *TraceReport { return obs.Analyze(events) }

// ReadTraceJSONL parses a JSONL event stream written by
// FlightRecorder.WriteJSONL (the `mobiceal trace -jsonl` export format).
func ReadTraceJSONL(r io.Reader) ([]FlightEvent, error) { return obs.ReadJSONL(r) }

// WritePrometheus renders a telemetry snapshot in Prometheus text
// exposition format (hand-rendered, standard library only). The metric
// set is the Telemetry surface re-keyed for scraping — deniability-safe
// like the snapshot itself: no volume, hidden, dummy or real labels.
func WritePrometheus(w io.Writer, t Telemetry) error { return core.WritePrometheus(w, t) }

// Pool health modes (see System.Health).
const (
	PoolWrite          = thinp.PoolWrite
	PoolOutOfDataSpace = thinp.PoolOutOfDataSpace
	PoolReadOnly       = thinp.PoolReadOnly
	PoolFail           = thinp.PoolFail
)

// NewFlakyDevice wraps dev with deterministic fault injection.
func NewFlakyDevice(dev Device, opts FlakyOptions) *FlakyDevice {
	return storage.NewFlakyDevice(dev, opts)
}

// WaitAll waits a set of request futures and returns the first error.
func WaitAll(futures ...*Future) error { return ioq.WaitAll(futures...) }

// Operating modes.
const (
	ModePublic = core.ModePublic
	ModeHidden = core.ModeHidden
)

// Errors callers are expected to test for.
var (
	// ErrBadPassword reports a password that opens no hidden volume.
	ErrBadPassword = core.ErrBadPassword
	// ErrTooSmall reports a device below the minimum layout size.
	ErrTooSmall = core.ErrTooSmall
	// ErrDirectUnsupported reports a direct-I/O image open on a platform
	// or file system without O_DIRECT (non-Linux builds, tmpfs).
	ErrDirectUnsupported = storage.ErrDirectUnsupported
)

// Setup initializes a fresh MobiCeal device with a decoy password and zero
// or more hidden passwords. Existing contents are destroyed.
func Setup(dev Device, cfg Config, decoyPassword string, hiddenPasswords []string) (*System, error) {
	return core.Setup(dev, cfg, decoyPassword, hiddenPasswords)
}

// Open loads an existing MobiCeal device.
func Open(dev Device, cfg Config) (*System, error) {
	return core.Open(dev, cfg)
}

// NewMemDevice returns an in-memory block device with snapshot support,
// suitable for experiments and tests.
func NewMemDevice(blockSize int, numBlocks uint64) *storage.MemDevice {
	return storage.NewMemDevice(blockSize, numBlocks)
}

// CreateImage creates a file-backed block device image.
func CreateImage(path string, blockSize int, numBlocks uint64) (*storage.FileDevice, error) {
	return storage.CreateFileDevice(path, blockSize, numBlocks)
}

// OpenImage opens an existing file-backed device image.
func OpenImage(path string, blockSize int) (*storage.FileDevice, error) {
	return storage.OpenFileDevice(path, blockSize)
}

// CreateImageWith is CreateImage with explicit file-backend options
// (direct I/O, strict buffer alignment).
func CreateImageWith(path string, blockSize int, numBlocks uint64, opts FileOptions) (*storage.FileDevice, error) {
	return storage.CreateFileDeviceWith(path, blockSize, numBlocks, opts)
}

// OpenImageWith is OpenImage with explicit file-backend options.
func OpenImageWith(path string, blockSize int, opts FileOptions) (*storage.FileDevice, error) {
	return storage.OpenFileDeviceWith(path, blockSize, opts)
}

// AlignedBuf allocates a page-aligned buffer of length n — the allocation
// direct-mode images want for zero-copy transfers (misaligned buffers
// still work, at the price of a bounce copy, unless FileOptions.
// StrictAlign rejects them).
func AlignedBuf(n int) []byte { return storage.AlignedBuf(n) }

// NewPhone wraps a device as a simulated Android handset running MobiCeal
// on the LG Nexus 4 profile. nominalBytes models the real userdata
// partition size for control-plane timing (use NominalNexus4Userdata).
func NewPhone(dev Device, cfg Config, nominalBytes uint64) *Phone {
	var clock vclock.Clock
	meter := vclock.NewMeter(&clock, vclock.Nexus4())
	return android.NewMobiCealPhone(dev, cfg, meter, nominalBytes)
}

// NominalNexus4Userdata is the userdata partition size of the prototype
// device, used for control-plane timing charges.
const NominalNexus4Userdata = 13 << 30

// AnalyzeSnapshots runs the multi-snapshot adversary's correlation on two
// captures of a MobiCeal device: diff, metadata parse, accountability
// classification and randomness tests. A deniable device yields a report
// with no unaccountable and no non-random changes.
func AnalyzeSnapshots(dev Device, before, after *Snapshot) (*DiffReport, error) {
	info, err := core.Layout(dev)
	if err != nil {
		return nil, fmt.Errorf("mobiceal: deriving layout: %w", err)
	}
	return adversary.AnalyzeDiff(before, after, info.MetaBlocks, info.DataBlocks, core.PublicVolumeID)
}

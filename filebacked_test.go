package mobiceal_test

import (
	"bytes"
	"errors"
	"path/filepath"
	"sync"
	"testing"

	"mobiceal"
)

// fileConfig is testConfig with the dispatch window opened — the
// real-storage fast-path configuration.
func fileConfig(seed uint64, inflight int) mobiceal.Config {
	cfg := testConfig(seed)
	cfg.MaxInFlight = inflight
	return cfg
}

// TestFileBackedSystem runs the full stack — Setup, public and hidden
// volumes, concurrent async writers, FlushAll, close, reopen — over a real
// file-backed image with a parallel dispatch window, and checks both
// durability across the reopen and the file-syscall telemetry surface.
func TestFileBackedSystem(t *testing.T) {
	runFileBackedSystem(t, mobiceal.FileOptions{})
}

// TestFileBackedSystemDirect is the same lifecycle under O_DIRECT,
// skipping where the filesystem refuses it (tmpfs TMPDIR, non-Linux).
func TestFileBackedSystemDirect(t *testing.T) {
	runFileBackedSystem(t, mobiceal.FileOptions{Direct: true})
}

func runFileBackedSystem(t *testing.T, fopts mobiceal.FileOptions) {
	const (
		blockSize = 4096
		numBlocks = 4096
		inflight  = 4
		writers   = 3
		opsEach   = 24
	)
	path := filepath.Join(t.TempDir(), "disk.img")
	dev, err := mobiceal.CreateImageWith(path, blockSize, numBlocks, fopts)
	if errors.Is(err, mobiceal.ErrDirectUnsupported) {
		t.Skipf("direct I/O unavailable here: %v", err)
	}
	if err != nil {
		t.Fatal(err)
	}

	sys, err := mobiceal.Setup(dev, fileConfig(99, inflight), "decoy", []string{"hush"})
	if err != nil {
		t.Fatal(err)
	}
	pub, err := sys.OpenPublic("decoy")
	if err != nil {
		t.Fatal(err)
	}
	hid, err := sys.OpenHidden("hush")
	if err != nil {
		t.Fatal(err)
	}

	// Concurrent async writers on both volumes: disjoint per-writer block
	// regions near the volume tails, submitted without waiting so the
	// windowed queues actually fill.
	vols := []*mobiceal.Volume{pub, hid}
	payload := func(vol, writer, op int) []byte {
		buf := make([]byte, blockSize)
		for i := range buf {
			buf[i] = byte(vol*91 + writer*37 + op*13 + i)
		}
		return buf
	}
	base := pub.Device().NumBlocks() - uint64(writers*opsEach) - 8
	var wg sync.WaitGroup
	errc := make(chan error, writers*len(vols))
	for vi, vol := range vols {
		for w := 0; w < writers; w++ {
			wg.Add(1)
			go func(vi, w int, vol *mobiceal.Volume) {
				defer wg.Done()
				var futs []*mobiceal.Future
				for op := 0; op < opsEach; op++ {
					off := base + uint64(w*opsEach+op)
					futs = append(futs, vol.SubmitWrite(off, payload(vi, w, op)))
				}
				errc <- mobiceal.WaitAll(futs...)
			}(vi, w, vol)
		}
	}
	wg.Wait()
	close(errc)
	for err := range errc {
		if err != nil {
			t.Fatalf("async writer: %v", err)
		}
	}
	if err := sys.FlushAll(); err != nil {
		t.Fatal(err)
	}

	// The telemetry surface must report the file backend, live.
	tel := sys.Telemetry()
	if tel.File == nil {
		t.Fatal("file-backed system reports no file syscall telemetry")
	}
	if tel.File.PwritevCalls == 0 {
		t.Fatal("workload issued no vectored writes")
	}
	if tel.File.Direct != fopts.Direct {
		t.Fatalf("telemetry direct = %v, want %v", tel.File.Direct, fopts.Direct)
	}
	if tel.IO.WindowMax != inflight {
		t.Fatalf("telemetry WindowMax = %d, want %d", tel.IO.WindowMax, inflight)
	}
	if err := sys.Close(); err != nil {
		t.Fatal(err)
	}
	if err := dev.Close(); err != nil {
		t.Fatal(err)
	}

	// Reopen from disk: everything written before FlushAll must be there,
	// in both volumes.
	dev2, err := mobiceal.OpenImageWith(path, blockSize, fopts)
	if err != nil {
		t.Fatal(err)
	}
	defer dev2.Close()
	sys2, err := mobiceal.Open(dev2, fileConfig(99, inflight))
	if err != nil {
		t.Fatal(err)
	}
	defer sys2.Close()
	pub2, err := sys2.OpenPublic("decoy")
	if err != nil {
		t.Fatal(err)
	}
	hid2, err := sys2.OpenHidden("hush")
	if err != nil {
		t.Fatal(err)
	}
	for vi, vol := range []*mobiceal.Volume{pub2, hid2} {
		for w := 0; w < writers; w++ {
			for op := 0; op < opsEach; op++ {
				off := base + uint64(w*opsEach+op)
				got := make([]byte, blockSize)
				if err := vol.SubmitRead(off, got).Wait(); err != nil {
					t.Fatalf("vol %d reopen read %d: %v", vi, off, err)
				}
				if !bytes.Equal(got, payload(vi, w, op)) {
					t.Fatalf("vol %d block %d lost or corrupted across reopen", vi, off)
				}
			}
		}
	}
}

package mobiceal_test

import (
	"bytes"
	"errors"
	"io"
	"testing"

	"mobiceal"
	"mobiceal/internal/prng"
)

func testConfig(seed uint64) mobiceal.Config {
	return mobiceal.Config{
		NumVolumes: 6,
		KDFIter:    8,
		Entropy:    prng.NewSeededEntropy(seed),
		Seed:       seed,
		SeedSet:    true,
	}
}

func TestFacadeEndToEnd(t *testing.T) {
	dev := mobiceal.NewMemDevice(4096, 4096)
	sys, err := mobiceal.Setup(dev, testConfig(1), "decoy", []string{"hidden"})
	if err != nil {
		t.Fatalf("Setup: %v", err)
	}
	pub, err := sys.OpenPublic("decoy")
	if err != nil {
		t.Fatal(err)
	}
	fs, err := pub.Format()
	if err != nil {
		t.Fatal(err)
	}
	f, err := fs.Create("hello.txt")
	if err != nil {
		t.Fatal(err)
	}
	msg := []byte("hello, deniable world")
	if _, err := f.WriteAt(msg, 0); err != nil {
		t.Fatal(err)
	}
	if err := fs.Sync(); err != nil {
		t.Fatal(err)
	}
	hid, err := sys.OpenHidden("hidden")
	if err != nil {
		t.Fatal(err)
	}
	if hid.Mode() != mobiceal.ModeHidden {
		t.Fatalf("mode = %v", hid.Mode())
	}
	if _, err := sys.OpenHidden("wrong"); !errors.Is(err, mobiceal.ErrBadPassword) {
		t.Fatalf("err = %v, want ErrBadPassword", err)
	}
	if err := sys.Commit(); err != nil {
		t.Fatal(err)
	}

	sys2, err := mobiceal.Open(dev, testConfig(2))
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	pub2, err := sys2.OpenPublic("decoy")
	if err != nil {
		t.Fatal(err)
	}
	fs2, err := pub2.Mount()
	if err != nil {
		t.Fatal(err)
	}
	f2, err := fs2.Open("hello.txt")
	if err != nil {
		t.Fatal(err)
	}
	got := make([]byte, len(msg))
	if _, err := f2.ReadAt(got, 0); err != nil && !errors.Is(err, io.EOF) {
		t.Fatal(err)
	}
	if !bytes.Equal(msg, got) {
		t.Fatal("facade roundtrip mismatch")
	}
}

func TestFacadeSnapshotAnalysis(t *testing.T) {
	dev := mobiceal.NewMemDevice(4096, 4096)
	sys, err := mobiceal.Setup(dev, testConfig(3), "decoy", []string{"hidden"})
	if err != nil {
		t.Fatal(err)
	}
	pub, err := sys.OpenPublic("decoy")
	if err != nil {
		t.Fatal(err)
	}
	fs, err := pub.Format()
	if err != nil {
		t.Fatal(err)
	}
	hid, err := sys.OpenHidden("hidden")
	if err != nil {
		t.Fatal(err)
	}
	hidFS, err := hid.Format()
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.Commit(); err != nil {
		t.Fatal(err)
	}
	before := dev.Snapshot()

	data := make([]byte, 40*4096)
	hf, err := hidFS.Create("secret")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := hf.WriteAt(data, 0); err != nil {
		t.Fatal(err)
	}
	if err := hidFS.Sync(); err != nil {
		t.Fatal(err)
	}
	pf, err := fs.Create("cover")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := pf.WriteAt(make([]byte, 150*4096), 0); err != nil {
		t.Fatal(err)
	}
	if err := fs.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := sys.Commit(); err != nil {
		t.Fatal(err)
	}
	after := dev.Snapshot()

	report, err := mobiceal.AnalyzeSnapshots(dev, before, after)
	if err != nil {
		t.Fatal(err)
	}
	if len(report.Unaccountable) != 0 {
		t.Fatalf("%d unaccountable changes", len(report.Unaccountable))
	}
	if report.NonRandomChanged != 0 {
		t.Fatalf("%d non-random changes", report.NonRandomChanged)
	}
	if report.Changed == 0 {
		t.Fatal("no changes recorded at all")
	}
}

func TestFacadePhone(t *testing.T) {
	dev := mobiceal.NewMemDevice(4096, 4096)
	phone := mobiceal.NewPhone(dev, testConfig(4), mobiceal.NominalNexus4Userdata)
	if err := phone.Initialize("decoy", []string{"hidden"}); err != nil {
		t.Fatal(err)
	}
	if err := phone.Boot("decoy"); err != nil {
		t.Fatal(err)
	}
	if err := phone.StartFramework(); err != nil {
		t.Fatal(err)
	}
	if err := phone.SwitchToHidden("hidden"); err != nil {
		t.Fatal(err)
	}
	if phone.Mode() != mobiceal.ModeHidden {
		t.Fatalf("mode = %v", phone.Mode())
	}
}

func TestFacadeImageFiles(t *testing.T) {
	path := t.TempDir() + "/disk.img"
	dev, err := mobiceal.CreateImage(path, 4096, 4096)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := mobiceal.Setup(dev, testConfig(5), "decoy", nil); err != nil {
		t.Fatal(err)
	}
	if err := dev.Close(); err != nil {
		t.Fatal(err)
	}
	dev2, err := mobiceal.OpenImage(path, 4096)
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if err := dev2.Close(); err != nil {
			t.Error(err)
		}
	}()
	sys, err := mobiceal.Open(dev2, testConfig(6))
	if err != nil {
		t.Fatal(err)
	}
	if sys.NumVolumes() != 6 {
		t.Fatalf("NumVolumes = %d", sys.NumVolumes())
	}
}

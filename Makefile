GO ?= go

.PHONY: test race bench-smoke bench-json bench-pr4 bench-pr5

test:
	$(GO) build ./... && $(GO) test ./...

race:
	$(GO) test -race ./...

# One iteration of every benchmark: catches benchmarks that rot without
# paying for real measurement.
bench-smoke:
	$(GO) test -run XXX -bench . -benchtime=1x ./...

# Machine-readable perf numbers for the tracked benchmark set (see
# BENCH_PR3.json for the committed baseline/post pairs).
bench-json:
	./cmd/experiments/bench_pr3.sh

# Concurrency benchmark set: group-commit folding, concurrent writers,
# volume service (see BENCH_PR4.json).
bench-pr4:
	./cmd/experiments/bench_pr4.sh

# Scatter-gather benchmark set: zero-copy merged dispatch vs the old
# scratch-copy merge, plus the PR 4 drift re-runs (see BENCH_PR5.json).
bench-pr5:
	./cmd/experiments/bench_pr5.sh

GO ?= go

.PHONY: test race bench-smoke bench-json bench-pr4 bench-pr5 bench-pr6 bench-pr7 bench-pr8 bench-pr9 bench-pr10 mutexprofile fault-soak

test:
	$(GO) build ./... && $(GO) test ./...

race:
	$(GO) test -race ./...

# One iteration of every benchmark: catches benchmarks that rot without
# paying for real measurement.
bench-smoke:
	$(GO) test -run XXX -bench . -benchtime=1x ./...

# Machine-readable perf numbers for the tracked benchmark set (see
# BENCH_PR3.json for the committed baseline/post pairs).
bench-json:
	./cmd/experiments/bench_pr3.sh

# Concurrency benchmark set: group-commit folding, concurrent writers,
# volume service (see BENCH_PR4.json).
bench-pr4:
	./cmd/experiments/bench_pr4.sh

# Scatter-gather benchmark set: zero-copy merged dispatch vs the old
# scratch-copy merge, plus the PR 4 drift re-runs (see BENCH_PR5.json).
bench-pr5:
	./cmd/experiments/bench_pr5.sh

# Robustness benchmark set: scheduler retry-path overhead with and without
# faults, thin-write drift with the health-mode gates in place, and the
# Fig. 4 serial-path guard (see BENCH_PR6.json).
bench-pr6:
	./cmd/experiments/bench_pr6.sh

# Telemetry benchmark set: obs primitive floors, StatsDevice wrap cost,
# thin-write drift with full instrumentation, snapshot price, and the
# Fig. 4 serial-path guard (see BENCH_PR7.json).
bench-pr7:
	./cmd/experiments/bench_pr7.sh

# Sharded-pool benchmark set: the commit-per-write writer-scaling sweep
# (1/4/16/64 writers x GOMAXPROCS 1/4). Set BASELINE=<rev> to also run the
# pre-PR A/B pair (see BENCH_PR8.json).
bench-pr8:
	./cmd/experiments/bench_pr8.sh

# Flight-recorder benchmark set: disabled/enabled Record floors plus the
# hot-write-path A/B drift guard. Set BASELINE=<rev> (PR 9 baseline:
# 0fa7cb8) to also run the pre-PR pair (see BENCH_PR9.json).
bench-pr9:
	./cmd/experiments/bench_pr9.sh

# Real-storage fast-path benchmark set: queue writers/readers and the
# full-stack writer A/B over mem / buffered file / O_DIRECT backends and
# dispatch-window sizes. inflight=1 is the serialized baseline — no
# worktree needed (see BENCH_PR10.json).
bench-pr10:
	./cmd/experiments/bench_pr10.sh

# Contention triage: the writer-scaling sweep with mutex profiling; the
# profile lands in /tmp/mutex.out for `go tool pprof`.
mutexprofile:
	$(GO) test -run XXX -bench 'BenchmarkShardedWriters/procs=4' \
		-benchtime 8000x -mutexprofile /tmp/mutex.out ./internal/thinp/
	@echo "profile: go tool pprof -top /tmp/mutex.out"

# Short-budget robustness soak: every fault-injection, health-ladder,
# retry and sweep suite under the race detector, twice. Mirrors the CI
# fault-soak job; the full sweeps (no -short stride) run in `make test`.
fault-soak:
	$(GO) test -race -count=2 \
		-run 'Fault|Flaky|Mode|Sweep|Retry|Barrier|Stress|NoSpace|Deadline|Health' \
		./internal/storage/ ./internal/ioq/ ./internal/thinp/ ./internal/core/ .

package mobiceal_test

import (
	"bytes"
	"fmt"
	"sync"
	"testing"

	"mobiceal"
)

// TestFaultStressDeniability soaks the full stack in randomized transient
// faults: a FlakyDevice injects seeded controller hiccups under concurrent
// public and hidden traffic on the asynchronous volume API. Every request
// must still succeed (the scheduler's retry rides the faults out), every
// byte written must read back intact, the pool must stay healthy — and the
// multi-snapshot adversary must come away empty-handed: no plaintext-looking
// change in the fault epoch, and a post-fault epoch that is spotless.
//
// The CI race matrix runs this at GOMAXPROCS 1 and 4, so both the fully
// serialized and the genuinely parallel interleavings are exercised.
func TestFaultStressDeniability(t *testing.T) {
	const (
		blockSize = 4096
		workers   = 2  // per volume
		rounds    = 40 // per worker
		region    = 48 // virtual blocks per worker
	)
	inner := mobiceal.NewMemDevice(blockSize, 8192)
	flaky := mobiceal.NewFlakyDevice(inner, mobiceal.FlakyOptions{Seed: 4242})
	cfg := testConfig(99)
	cfg.AsyncWorkers = 4
	sys, err := mobiceal.Setup(flaky, cfg, "decoy-pass", []string{"hidden-pass"})
	if err != nil {
		t.Fatalf("Setup: %v", err)
	}
	pub, err := sys.OpenPublic("decoy-pass")
	if err != nil {
		t.Fatal(err)
	}
	hid, err := sys.OpenHidden("hidden-pass")
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.Commit(); err != nil {
		t.Fatal(err)
	}
	before := inner.Snapshot()

	// Arm the fault stream only now: setup and unlock use the synchronous
	// path; the resilience contract under test is the async API's.
	flaky.SetRates(0.08, 0)

	// fill is the deterministic plaintext of a worker's virtual block, so
	// read-back verification needs no shared bookkeeping.
	fill := func(volID, w int, vb uint64) []byte {
		buf := make([]byte, blockSize)
		for i := range buf {
			buf[i] = byte(uint64(volID)<<6 ^ uint64(w)<<4 ^ vb ^ uint64(i)&0xff)
		}
		return buf
	}

	var wg sync.WaitGroup
	for vi, vol := range []*mobiceal.Volume{pub, hid} {
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(vi int, vol *mobiceal.Volume, w int) {
				defer wg.Done()
				// Disjoint per-worker regions, offset past the volumes'
				// reserved block 0.
				base := uint64(1 + (vi*workers+w)*region)
				var futures []*mobiceal.Future
				for r := 0; r < rounds; r++ {
					vb := base + uint64(r*7%region)
					switch r % 4 {
					case 0, 1:
						if err := vol.SubmitWrite(vb, fill(vol.ID(), w, vb)).Wait(); err != nil {
							t.Errorf("vol %d write block %d: %v", vol.ID(), vb, err)
							return
						}
					case 2:
						dst := make([]byte, blockSize)
						futures = append(futures, vol.SubmitRead(vb, dst))
					case 3:
						futures = append(futures, vol.Flush())
					}
				}
				if err := mobiceal.WaitAll(futures...); err != nil {
					t.Errorf("vol %d worker %d: %v", vol.ID(), w, err)
				}
			}(vi, vol, w)
		}
	}
	wg.Wait()
	if t.Failed() {
		return
	}
	if err := sys.FlushAll(); err != nil {
		t.Fatalf("FlushAll under faults: %v", err)
	}

	// Read back every block each worker last wrote — end-to-end integrity
	// through the fault storm. (Round r touches base + r*7%region, so the
	// final contents per slot are deterministic.)
	for vi, vol := range []*mobiceal.Volume{pub, hid} {
		for w := 0; w < workers; w++ {
			base := uint64(1 + (vi*workers+w)*region)
			written := map[uint64]bool{}
			for r := 0; r < rounds; r++ {
				if r%4 <= 1 {
					written[base+uint64(r*7%region)] = true
				}
			}
			for vb := range written {
				dst := make([]byte, blockSize)
				if err := vol.SubmitRead(vb, dst).Wait(); err != nil {
					t.Fatalf("read-back vol %d block %d: %v", vol.ID(), vb, err)
				}
				if !bytes.Equal(dst, fill(vol.ID(), w, vb)) {
					t.Fatalf("vol %d block %d corrupted under faults", vol.ID(), vb)
				}
			}
		}
	}

	health := sys.Health()
	if !health.Healthy() {
		t.Fatalf("pool degraded under transient faults: %v (%s)", health.Mode, health.Reason)
	}
	stats := flaky.Stats()
	if stats.Transient == 0 {
		t.Fatal("fault device injected nothing — the soak tested nothing")
	}
	if health.IO.Recovered == 0 {
		t.Fatalf("no request recovered by retry despite %d injected faults", stats.Transient)
	}
	if health.IO.Failures != 0 {
		t.Fatalf("scheduler recorded %d hard failures", health.IO.Failures)
	}
	t.Logf("injected %d transient faults; scheduler retried %d, recovered %d requests",
		stats.Transient, health.IO.Retries, health.IO.Recovered)

	// Fault-epoch verdict: whatever the fault storm did, no change may look
	// like plaintext. (Write-then-free around a faulted attempt can leave
	// changed-but-unallocated blocks — unaccountable for any scheme within
	// one epoch — so the unaccountable-free assertion belongs to the clean
	// epoch below.)
	after := inner.Snapshot()
	report, err := mobiceal.AnalyzeSnapshots(inner, before, after)
	if err != nil {
		t.Fatal(err)
	}
	if report.NonRandomChanged != 0 {
		t.Fatalf("fault epoch leaked %d plaintext-looking changes", report.NonRandomChanged)
	}

	// Post-fault epoch: disarm the faults, run ordinary traffic, and demand
	// the full verdict — every change accountable and random-looking.
	flaky.SetRates(0, 0)
	for vi, vol := range []*mobiceal.Volume{pub, hid} {
		base := uint64(1 + (vi*workers+workers)*region)
		for vb := base; vb < base+8; vb++ {
			if err := vol.SubmitWrite(vb, fill(vol.ID(), 7, vb)).Wait(); err != nil {
				t.Fatalf("clean-epoch write: %v", err)
			}
		}
	}
	if err := sys.Close(); err != nil {
		t.Fatal(err)
	}
	report, err = mobiceal.AnalyzeSnapshots(inner, after, inner.Snapshot())
	if err != nil {
		t.Fatal(err)
	}
	if len(report.Unaccountable) != 0 || report.NonRandomChanged != 0 {
		t.Fatalf("post-fault epoch not deniable: %s", describeReport(report))
	}
}

func describeReport(r *mobiceal.DiffReport) string {
	return fmt.Sprintf("changed=%d meta=%d unaccountable=%d nonpublic=%d public=%d nonrandom=%d",
		r.Changed, r.MetaChanged, len(r.Unaccountable), r.NonPublicChanged,
		r.PublicChanged, r.NonRandomChanged)
}

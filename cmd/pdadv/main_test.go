package main

import (
	"os"
	"path/filepath"
	"testing"

	"mobiceal"
)

// buildImage creates a MobiCeal image on disk, returning paths to two
// snapshot files with public (and optionally hidden) writes between them.
func buildImage(t *testing.T, dir string, withHidden bool) (snap1, snap2 string) {
	t.Helper()
	image := filepath.Join(dir, "disk.img")
	dev, err := mobiceal.CreateImage(image, blockSize, 8192)
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if err := dev.Close(); err != nil {
			t.Fatal(err)
		}
	}()
	sys, err := mobiceal.Setup(dev, mobiceal.Config{NumVolumes: 6, KDFIter: 8},
		"decoy", []string{"hidden"})
	if err != nil {
		t.Fatal(err)
	}
	pub, err := sys.OpenPublic("decoy")
	if err != nil {
		t.Fatal(err)
	}
	pubFS, err := pub.Format()
	if err != nil {
		t.Fatal(err)
	}
	hid, err := sys.OpenHidden("hidden")
	if err != nil {
		t.Fatal(err)
	}
	hidFS, err := hid.Format()
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.Commit(); err != nil {
		t.Fatal(err)
	}
	if err := dev.Sync(); err != nil {
		t.Fatal(err)
	}

	snap1 = filepath.Join(dir, "snap1.img")
	copyFile(t, image, snap1)

	if withHidden {
		f, err := hidFS.Create("secret")
		if err != nil {
			t.Fatal(err)
		}
		if _, err := f.WriteAt(make([]byte, 20*blockSize), 0); err != nil {
			t.Fatal(err)
		}
		if err := hidFS.Sync(); err != nil {
			t.Fatal(err)
		}
	}
	f, err := pubFS.Create("cover")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteAt(make([]byte, 100*blockSize), 0); err != nil {
		t.Fatal(err)
	}
	if err := pubFS.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := sys.Commit(); err != nil {
		t.Fatal(err)
	}
	if err := dev.Sync(); err != nil {
		t.Fatal(err)
	}
	snap2 = filepath.Join(dir, "snap2.img")
	copyFile(t, image, snap2)
	return snap1, snap2
}

func copyFile(t *testing.T, from, to string) {
	t.Helper()
	data, err := os.ReadFile(from)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(to, data, 0o600); err != nil {
		t.Fatal(err)
	}
}

func TestPdadvDiffOnMobiCealImage(t *testing.T) {
	dir := t.TempDir()
	snap1, snap2 := buildImage(t, dir, true)
	if err := run([]string{"diff", "-a", snap1, "-b", snap2}); err != nil {
		t.Fatalf("diff: %v", err)
	}
}

func TestPdadvInspect(t *testing.T) {
	dir := t.TempDir()
	_, snap2 := buildImage(t, dir, false)
	if err := run([]string{"inspect", "-image", snap2}); err != nil {
		t.Fatalf("inspect: %v", err)
	}
}

func TestPdadvCarve(t *testing.T) {
	dir := t.TempDir()
	_, snap2 := buildImage(t, dir, true)
	if err := run([]string{"carve", "-image", snap2, "-pattern", "SECRETMARKER"}); err != nil {
		t.Fatalf("carve: %v", err)
	}
}

func TestPdadvUsageErrors(t *testing.T) {
	for _, args := range [][]string{
		nil,
		{"nonsense"},
		{"diff"},
		{"diff", "-a", "missing.img", "-b", "missing.img"},
		{"inspect"},
		{"inspect", "-image", "missing.img"},
		{"carve"},
		{"carve", "-image", "missing.img", "-pattern", "x"},
	} {
		if err := run(args); err == nil {
			t.Fatalf("run(%v) succeeded", args)
		}
	}
}

// Command pdadv is the multi-snapshot adversary's forensics tool: it
// correlates device snapshots the way the paper's threat model prescribes
// (Sec. III-A) and reports what a border-checkpoint examiner could learn.
//
// Usage:
//
//	pdadv inspect -image disk.img
//	pdadv diff    -a snap1.img -b snap2.img
//	pdadv carve   -image disk.img -pattern JFIF
//
// inspect parses the (plaintext) pool metadata of a single image: volume
// table, allocation counts, layout-run analysis and dummy-count suspicion.
// diff correlates two snapshots: changed blocks, accountability
// classification, randomness of new content. On a correctly behaving
// MobiCeal device the verdict is "no evidence"; against hidden-volume
// schemes like MobiPluto it finds unaccountable changes.
package main

import (
	"errors"
	"flag"
	"fmt"
	"os"

	"mobiceal/internal/adversary"
	"mobiceal/internal/core"
	"mobiceal/internal/storage"
)

const blockSize = 4096

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "pdadv:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	if len(args) < 1 {
		return errors.New("usage: pdadv <inspect|diff> [flags]")
	}
	switch args[0] {
	case "inspect":
		return cmdInspect(args[1:])
	case "diff":
		return cmdDiff(args[1:])
	case "carve":
		return cmdCarve(args[1:])
	default:
		return fmt.Errorf("unknown subcommand %q", args[0])
	}
}

// cmdCarve scans an image for a plaintext signature (file magic, known
// document fragments) — the carving pass of a forensic examination.
func cmdCarve(args []string) error {
	fs := flag.NewFlagSet("carve", flag.ContinueOnError)
	image := fs.String("image", "", "device image path")
	pattern := fs.String("pattern", "", "plaintext byte pattern to scan for")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *image == "" || *pattern == "" {
		return errors.New("carve: -image and -pattern are required")
	}
	snap, err := loadSnapshot(*image)
	if err != nil {
		return err
	}
	hits := adversary.FindSignature(snap, []byte(*pattern))
	if len(hits) == 0 {
		fmt.Printf("pattern %q: not found in %d blocks — everything at rest is ciphertext/noise\n",
			*pattern, snap.NumBlocks())
		return nil
	}
	fmt.Printf("pattern %q found in %d block(s):", *pattern, len(hits))
	for i, idx := range hits {
		if i == 16 {
			fmt.Printf(" … (%d more)", len(hits)-16)
			break
		}
		fmt.Printf(" %d", idx)
	}
	fmt.Println("\nVERDICT: plaintext at rest — encryption coverage is broken")
	return nil
}

// loadSnapshot reads an image file into an immutable snapshot.
func loadSnapshot(path string) (*storage.Snapshot, error) {
	dev, err := storage.OpenFileDevice(path, blockSize)
	if err != nil {
		return nil, err
	}
	defer func() { _ = dev.Close() }()
	mem := storage.NewMemDevice(blockSize, dev.NumBlocks())
	buf := make([]byte, blockSize)
	for i := uint64(0); i < dev.NumBlocks(); i++ {
		if err := dev.ReadBlock(i, buf); err != nil {
			return nil, err
		}
		if err := mem.WriteBlock(i, buf); err != nil {
			return nil, err
		}
	}
	return mem.Snapshot(), nil
}

func cmdInspect(args []string) error {
	fs := flag.NewFlagSet("inspect", flag.ContinueOnError)
	image := fs.String("image", "", "device image path")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *image == "" {
		return errors.New("inspect: -image is required")
	}
	snap, err := loadSnapshot(*image)
	if err != nil {
		return err
	}
	info, err := core.Layout(snap)
	if err != nil {
		return err
	}
	view, err := adversary.InspectPool(snap, info.MetaBlocks, info.DataBlocks)
	if err != nil {
		return err
	}
	fmt.Printf("layout: %d metadata + %d data + %d footer blocks\n",
		info.MetaBlocks, info.DataBlocks, info.FooterBlocks)
	fmt.Printf("allocated: %d / %d data blocks\n",
		view.Allocated.Allocated(), view.Allocated.Size())
	var public, nonPublic uint64
	fmt.Println("volumes:")
	for _, id := range view.VolumeIDs {
		kind := "non-public (hidden or dummy — indistinguishable)"
		if id == core.PublicVolumeID {
			kind = "public"
			public = view.MappedCount[id]
		} else {
			nonPublic += view.MappedCount[id]
		}
		fmt.Printf("  V%-3d %8d blocks mapped   %s\n", id, view.MappedCount[id], kind)
	}
	maxRun := view.MaxSameVolumeRun(core.PublicVolumeID)
	fmt.Printf("layout analysis: longest same-volume physical run = %d\n", maxRun)
	if maxRun > 16 {
		fmt.Println("  SUSPICIOUS: run too long to be a single dummy write")
	} else {
		fmt.Println("  consistent with random allocation + dummy writes")
	}
	suspicion := adversary.DummyCountSuspicion(public, nonPublic, 1)
	fmt.Printf("dummy-count suspicion: %.3f (>1 means the dummy story cannot explain the data)\n", suspicion)
	return nil
}

func cmdDiff(args []string) error {
	fs := flag.NewFlagSet("diff", flag.ContinueOnError)
	a := fs.String("a", "", "earlier snapshot image")
	b := fs.String("b", "", "later snapshot image")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *a == "" || *b == "" {
		return errors.New("diff: -a and -b are required")
	}
	snapA, err := loadSnapshot(*a)
	if err != nil {
		return err
	}
	snapB, err := loadSnapshot(*b)
	if err != nil {
		return err
	}
	info, err := core.Layout(snapB)
	if err != nil {
		return err
	}
	report, err := adversary.AnalyzeDiff(snapA, snapB, info.MetaBlocks, info.DataBlocks, core.PublicVolumeID)
	if err != nil {
		return err
	}
	fmt.Printf("changed data blocks:      %d\n", report.Changed)
	fmt.Printf("changed metadata blocks:  %d\n", report.MetaChanged)
	fmt.Printf("  owned by public volume: %d\n", report.PublicChanged)
	fmt.Printf("  owned by other volumes: %d (dummy or hidden — deniable)\n", report.NonPublicChanged)
	fmt.Printf("  unaccountable:          %d\n", len(report.Unaccountable))
	fmt.Printf("  non-random content:     %d\n", report.NonRandomChanged)
	switch {
	case len(report.Unaccountable) > 0:
		fmt.Println("VERDICT: deniability COMPROMISED — writes outside the allocation machinery")
	case report.NonRandomChanged > 0:
		fmt.Println("VERDICT: suspicious — structured content appeared in changed blocks")
	default:
		fmt.Println("VERDICT: no evidence — every change is accountable as public or dummy writes")
	}
	return nil
}

#!/bin/sh
# bench_pr9.sh — price the PR 9 flight recorder on the hot write path and
# emit the results as JSON on stdout (the format committed in
# BENCH_PR9.json).
#
#   ./cmd/experiments/bench_pr9.sh > /tmp/bench.json
#   BENCHTIME=2000x ./cmd/experiments/bench_pr9.sh     # quicker smoke run
#   BASELINE=0fa7cb8 ./cmd/experiments/bench_pr9.sh    # also run the A/B
#
# The tentpole claim is that threading flight ids through ioq → thinp →
# storage costs the disabled path nothing measurable: one atomic load per
# choke point, zero allocations. Three prices pin it:
#
#   - BenchmarkFlightRecorderDisabled / Nil: the per-Record floor when
#     recording is off (~1 ns, 0 allocs) or the recorder is absent.
#   - BenchmarkFlightRecorderRecord(/Parallel): the enabled cost — one
#     atomic ticket plus six atomic stores, lock-free across shards.
#   - BenchmarkThinWriteSequentialAlloc / RandomAlloc: the end-to-end
#     drift guard. With BASELINE set to a pre-PR rev (PR 9's baseline is
#     0fa7cb8, the sharded-pool merge) the same two benchmarks run in a
#     detached worktree of that rev — both trees carry them natively, no
#     file copying — and the A/B pair must agree within run noise.
set -e
cd "$(dirname "$0")/../.."

BENCHTIME="${BENCHTIME:-20000x}"

if [ -n "$BASELINE" ]; then
	WT=$(mktemp -d /tmp/bench-pr9-base.XXXXXX)
	trap 'git worktree remove --force "$WT" 2>/dev/null || true; rm -rf "$WT"' EXIT
	git worktree add --detach "$WT" "$BASELINE" >&2
	(cd "$WT" && go test -run XXX \
		-bench 'BenchmarkThinWriteSequentialAlloc|BenchmarkThinWriteRandomAlloc' \
		-benchtime "$BENCHTIME" ./internal/thinp/) | go run ./cmd/experiments/benchjson
fi

{
	go test -run XXX -bench 'BenchmarkFlightRecorder' -benchtime "$BENCHTIME" ./internal/obs/
	go test -run XXX \
		-bench 'BenchmarkThinWriteSequentialAlloc|BenchmarkThinWriteRandomAlloc' \
		-benchtime "$BENCHTIME" ./internal/thinp/
} | go run ./cmd/experiments/benchjson

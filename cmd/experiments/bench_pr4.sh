#!/bin/sh
# bench_pr4.sh — run the concurrency benchmark set and emit the results as
# JSON on stdout (the format committed in BENCH_PR4.json).
#
#   ./cmd/experiments/bench_pr4.sh > /tmp/bench.json
#   BENCHTIME=200x ./cmd/experiments/bench_pr4.sh     # quicker smoke run
#
# The set covers the numbers the README concurrency section tracks:
# concurrent commit-per-write writers with the commits/flip group-commit
# fold ratio (zero-latency and modeled-sync-latency devices), and the
# end-to-end volume service (async scheduler vs the direct synchronous
# path), plus the Fig. 4 stack throughputs as the serial-path regression
# guard (*_virt reproduction metrics included).
set -e
cd "$(dirname "$0")/../.."

BENCHTIME="${BENCHTIME:-1000x}"

{
	go test -run XXX -bench 'BenchmarkConcurrentWriters' -benchtime "$BENCHTIME" ./internal/thinp/
	go test -run XXX -bench 'BenchmarkVolumeService' -benchtime "$BENCHTIME" ./internal/ioq/
	go test -run XXX -bench 'BenchmarkFig4' -benchtime "$BENCHTIME" .
} | go run ./cmd/experiments/benchjson

#!/bin/sh
# bench_pr10.sh — run the PR 10 real-storage fast-path sweep and emit the
# results as JSON on stdout (the format committed in BENCH_PR10.json).
#
#   ./cmd/experiments/bench_pr10.sh > /tmp/bench.json
#   BENCHTIME=100x ./cmd/experiments/bench_pr10.sh      # quicker smoke run
#
# Three benchmarks, each an A/B over backend (mem / buffered file /
# O_DIRECT file) and the dispatch window (inflight=1 is the pre-window
# serialized dispatcher, bit-for-bit — no baseline worktree is needed, the
# serialized path IS the baseline):
#
#   BenchmarkFileQueueWriters — scheduler straight over the device, N
#     writers each submitting one disjoint 32 KiB chunk per iteration.
#   BenchmarkFileQueueReaders — the read side; on hosts where direct
#     writes serialize in the kernel this is where the window shows.
#   BenchmarkFileSystemWriters — the same A/B through the whole stack
#     (Setup, open volume, encryption, thin pool).
#
# The direct backend subbenches skip cleanly where the filesystem refuses
# O_DIRECT (tmpfs TMPDIR, non-Linux). GOMAXPROCS defaults to 4: the window
# needs free Ps to overlap blocking preadv/pwritev calls — at GOMAXPROCS=1
# the Go runtime serializes the in-flight runs before the kernel sees them
# (see the note atop filebacked_bench_test.go).
set -e
cd "$(dirname "$0")/../.."

BENCHTIME="${BENCHTIME:-300x}"
GOMAXPROCS="${GOMAXPROCS:-4}"
export GOMAXPROCS

go test -run XXX \
	-bench 'BenchmarkFileQueueWriters|BenchmarkFileQueueReaders|BenchmarkFileSystemWriters' \
	-benchtime "$BENCHTIME" . | go run ./cmd/experiments/benchjson

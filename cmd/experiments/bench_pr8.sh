#!/bin/sh
# bench_pr8.sh — run the PR 8 sharded-pool writer-scaling sweep and emit
# the results as JSON on stdout (the format committed in BENCH_PR8.json).
#
#   ./cmd/experiments/bench_pr8.sh > /tmp/bench.json
#   BENCHTIME=2000x ./cmd/experiments/bench_pr8.sh      # quicker smoke run
#   BASELINE=cbe449c ./cmd/experiments/bench_pr8.sh     # also run the A/B
#
# BenchmarkShardedWriters is N commit-per-write writers, each op a
# reallocate-on-write provisioning against the random allocator, swept over
# 1/4/16/64 writers at GOMAXPROCS 1 and 4. The acceptance number for PR 8
# is >= 3x ns/op at procs=4/writers=16 versus the pre-PR tree.
#
# With BASELINE set to a git rev, the script additionally checks that rev
# out into a temporary worktree, drops the CURRENT bench file in (the
# benchmark is written against the long-stable pool API plus a duck-typed
# ReplaceBlock probe, so the same file compiles on both trees), and runs
# the same sweep there — emitting two JSON arrays: baseline first, then
# post. BENCH_PR8.json is those two arrays assembled by hand with the
# commentary block.
set -e
cd "$(dirname "$0")/../.."

BENCHTIME="${BENCHTIME:-20000x}"

if [ -n "$BASELINE" ]; then
	WT=$(mktemp -d /tmp/bench-pr8-base.XXXXXX)
	trap 'git worktree remove --force "$WT" 2>/dev/null || true; rm -rf "$WT"' EXIT
	git worktree add --detach "$WT" "$BASELINE" >&2
	cp internal/thinp/sharded_bench_test.go "$WT/internal/thinp/"
	(cd "$WT" && go test -run XXX -bench 'BenchmarkShardedWriters' \
		-benchtime "$BENCHTIME" ./internal/thinp/) | go run ./cmd/experiments/benchjson
fi

go test -run XXX -bench 'BenchmarkShardedWriters' -benchtime "$BENCHTIME" \
	./internal/thinp/ | go run ./cmd/experiments/benchjson

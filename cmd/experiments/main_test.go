package main

import "testing"

func TestRunEachExperiment(t *testing.T) {
	if testing.Short() {
		t.Skip("runs full experiment harnesses")
	}
	for _, what := range []string{"fig4", "table1", "table2", "rand", "alloc", "dummy", "volumes", "smallfile", "gc"} {
		what := what
		t.Run(what, func(t *testing.T) {
			if err := run(what, 8, 4, 1); err != nil {
				t.Fatalf("run(%s): %v", what, err)
			}
		})
	}
}

func TestRunGameSmall(t *testing.T) {
	if testing.Short() {
		t.Skip("runs many systems")
	}
	if err := run("game", 8, 4, 2); err != nil {
		t.Fatalf("run(game): %v", err)
	}
}

func TestRunUnknownIsNoop(t *testing.T) {
	// Unknown -run values match nothing and return cleanly.
	if err := run("bogus", 8, 2, 1); err != nil {
		t.Fatalf("run(bogus): %v", err)
	}
}

#!/bin/sh
# bench_pr5.sh — run the scatter-gather I/O benchmark set and emit the
# results as JSON on stdout (the format committed in BENCH_PR5.json).
#
#   ./cmd/experiments/bench_pr5.sh > /tmp/bench.json
#   BENCHTIME=500x ./cmd/experiments/bench_pr5.sh     # quicker smoke run
#
# The set covers the numbers the README tracks for the zero-copy merged
# dispatch: BenchmarkMergedRun pits the shipping scatter-gather path
# (zerocopy) against a layer reproducing the old pooled-scratch merge
# (gather), so the committed pair keeps measuring exactly what the payload
# memcpy was worth; BenchmarkVolumeService and BenchmarkConcurrentWriters
# re-run the PR 4 concurrency numbers for drift; BenchmarkFig4 is the
# serial-path regression guard with the *_virt reproduction metrics that
# must stay bit-identical.
set -e
cd "$(dirname "$0")/../.."

BENCHTIME="${BENCHTIME:-5000x}"

{
	go test -run XXX -bench 'BenchmarkMergedRun' -benchtime "$BENCHTIME" ./internal/ioq/
	go test -run XXX -bench 'BenchmarkVolumeService' -benchtime 1000x ./internal/ioq/
	go test -run XXX -bench 'BenchmarkConcurrentWriters' -benchtime 1000x ./internal/thinp/
	go test -run XXX -bench 'BenchmarkFig4' -benchtime 1000x .
} | go run ./cmd/experiments/benchjson

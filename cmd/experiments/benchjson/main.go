// Command benchjson converts `go test -bench` output on stdin into a
// machine-readable JSON array, so benchmark results can be committed,
// diffed and tracked across PRs instead of living in scrollback.
//
// Usage:
//
//	go test -run XXX -bench . -benchtime 1000x . | go run ./cmd/experiments/benchjson
//
// Each benchmark line becomes one object carrying the iteration count,
// ns/op, MB/s when reported, and every custom metric (the *_virt
// virtual-testbed metrics included) under "metrics".
package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"strconv"
	"strings"
)

// Result is one parsed benchmark line.
type Result struct {
	Name       string             `json:"name"`
	Iterations int64              `json:"iterations"`
	NsPerOp    float64            `json:"ns_per_op"`
	MBPerS     float64            `json:"mb_per_s,omitempty"`
	Metrics    map[string]float64 `json:"metrics,omitempty"`
}

func parseLine(line string) (Result, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
		return Result{}, false
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Result{}, false
	}
	r := Result{Name: fields[0], Iterations: iters}
	for i := 2; i+1 < len(fields); i += 2 {
		val, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			continue
		}
		switch unit := fields[i+1]; unit {
		case "ns/op":
			r.NsPerOp = val
		case "MB/s":
			r.MBPerS = val
		default:
			if strings.HasSuffix(unit, "B/op") || strings.HasSuffix(unit, "allocs/op") {
				continue
			}
			if r.Metrics == nil {
				r.Metrics = map[string]float64{}
			}
			r.Metrics[unit] = val
		}
	}
	return r, r.NsPerOp != 0
}

func run(in *bufio.Scanner, out *json.Encoder) error {
	var results []Result
	for in.Scan() {
		if r, ok := parseLine(in.Text()); ok {
			results = append(results, r)
		}
	}
	if err := in.Err(); err != nil {
		return err
	}
	return out.Encode(results)
}

func main() {
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := run(sc, enc); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}

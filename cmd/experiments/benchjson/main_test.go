package main

import "testing"

func TestParseLine(t *testing.T) {
	r, ok := parseLine("BenchmarkFig4/MC-P/write \t 1000\t 117092 ns/op\t 559.70 MB/s\t 15237 bwrite_virt_KB/s\t 14870 ddwrite_virt_KB/s")
	if !ok {
		t.Fatal("line not parsed")
	}
	if r.Name != "BenchmarkFig4/MC-P/write" || r.Iterations != 1000 {
		t.Fatalf("parsed %+v", r)
	}
	if r.NsPerOp != 117092 || r.MBPerS != 559.70 {
		t.Fatalf("parsed %+v", r)
	}
	if r.Metrics["bwrite_virt_KB/s"] != 15237 || r.Metrics["ddwrite_virt_KB/s"] != 14870 {
		t.Fatalf("metrics %+v", r.Metrics)
	}

	for _, bad := range []string{
		"goos: linux",
		"PASS",
		"ok  \tmobiceal\t64.9s",
		"BenchmarkBroken\tnotanumber\t12 ns/op",
	} {
		if _, ok := parseLine(bad); ok {
			t.Fatalf("parsed non-benchmark line %q", bad)
		}
	}

	// -benchmem columns are dropped, not treated as metrics.
	r, ok = parseLine("BenchmarkX \t 200\t 100 ns/op\t 9340 B/op\t 9 allocs/op")
	if !ok || len(r.Metrics) != 0 {
		t.Fatalf("benchmem columns leaked into metrics: %+v", r)
	}
}

#!/bin/sh
# bench_pr7.sh — run the telemetry benchmark set and emit the results as
# JSON on stdout (the format committed in BENCH_PR7.json).
#
#   ./cmd/experiments/bench_pr7.sh > /tmp/bench.json
#   BENCHTIME=2000x ./cmd/experiments/bench_pr7.sh    # quicker smoke run
#
# The set prices what the PR 7 observability subsystem costs. The obs
# primitives are the per-event floor (one atomic add for a counter, a
# bits.Len bucket index plus three atomics for a histogram observe, one
# atomic load for a disabled flight recorder — the PR 9 successor of the
# span tracer this set originally priced). BenchmarkDeviceWriteOverhead prices
# the StatsDevice wrap against a raw RAM-speed device — the worst case,
# since nothing amortizes the two clock reads. BenchmarkTelemetrySnapshot
# is the scraper's cost per full Telemetry() snapshot.
# BenchmarkThinWriteRandomAlloc and BenchmarkFig4 are the end-to-end drift
# guards: instrumented vs pre-PR within run noise, and the Fig. 4 *_virt
# reproduction metrics bit-identical.
set -e
cd "$(dirname "$0")/../.."

BENCHTIME="${BENCHTIME:-20000x}"

{
	go test -run XXX -bench 'BenchmarkCounterInc|BenchmarkHistogramObserve|BenchmarkFlightRecorderDisabled' -benchtime "$BENCHTIME" ./internal/obs/
	go test -run XXX -bench 'BenchmarkDeviceWriteOverhead' -benchtime "$BENCHTIME" ./internal/storage/
	go test -run XXX -bench 'BenchmarkThinWriteRandomAlloc' -benchtime "$BENCHTIME" ./internal/thinp/
	go test -run XXX -bench 'BenchmarkTelemetrySnapshot' -benchtime "$BENCHTIME" .
	go test -run XXX -bench 'BenchmarkFig4' -benchtime 1000x .
} | go run ./cmd/experiments/benchjson

#!/bin/sh
# bench_pr3.sh — run the perf-trajectory benchmark set and emit the results
# as JSON on stdout (the format committed in BENCH_PR3.json).
#
#   ./cmd/experiments/bench_pr3.sh > /tmp/bench.json
#   BENCHTIME=200x ./cmd/experiments/bench_pr3.sh     # quicker smoke run
#
# The set covers the numbers the README performance section tracks: the
# Fig. 4 stack throughputs (with the *_virt reproduction metrics), the
# flat-cost metadata commit, the snapshot/diff adversary primitives, and
# the dense-volume dummy-write picker.
set -e
cd "$(dirname "$0")/../.."

BENCHTIME="${BENCHTIME:-1000x}"

{
	go test -run XXX -bench 'BenchmarkCommitIncremental|BenchmarkSnapshotDiff|BenchmarkFig4' -benchtime "$BENCHTIME" .
	go test -run XXX -bench 'BenchmarkRandomUnmappedVBlock' -benchtime "$BENCHTIME" ./internal/thinp/
	go test -run XXX -bench 'BenchmarkSnapshotCheckpoint' -benchtime 100x ./internal/storage/
} | go run ./cmd/experiments/benchjson

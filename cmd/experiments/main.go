// Command experiments regenerates the paper's evaluation tables and
// figures (Sec. VI) plus the supporting studies from this repository's
// implementations.
//
// Usage:
//
//	experiments -run all
//	experiments -run fig4 -filemb 64
//	experiments -run table1|table2|game|rand|alloc|dummy|gc
//
// The numbers come from running the real Go implementations under the
// per-testbed virtual cost profiles; see EXPERIMENTS.md for the
// paper-vs-measured record.
package main

import (
	"flag"
	"fmt"
	"os"

	"mobiceal/internal/experiments"
)

func main() {
	runWhat := flag.String("run", "all", "fig4|table1|table2|game|rand|alloc|dummy|volumes|smallfile|gc|all")
	fileMB := flag.Int("filemb", 32, "test file size in MiB for throughput experiments")
	trials := flag.Int("trials", 20, "trials per security-game configuration")
	seed := flag.Uint64("seed", 1, "experiment seed")
	flag.Parse()

	if err := run(*runWhat, *fileMB, *trials, *seed); err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}
}

func run(what string, fileMB, trials int, seed uint64) error {
	all := what == "all"
	if all || what == "fig4" {
		fmt.Println("== Figure 4: sequential throughput (Nexus 4 profile) ==")
		rows, err := experiments.Fig4(experiments.Fig4Config{FileMB: fileMB, Seed: seed})
		if err != nil {
			return err
		}
		fmt.Println(experiments.FormatFig4(rows))
	}
	if all || what == "table1" {
		fmt.Println("== Table I: overhead comparison (per-testbed profiles) ==")
		rows, err := experiments.TableI(experiments.TableIConfig{FileMB: fileMB / 2, Seed: seed})
		if err != nil {
			return err
		}
		fmt.Println(experiments.FormatTableI(rows))
	}
	if all || what == "table2" {
		fmt.Println("== Table II: initialization, boot and switching times ==")
		rows, err := experiments.TableII(seed)
		if err != nil {
			return err
		}
		fmt.Println(experiments.FormatTableII(rows))
	}
	if all || what == "game" {
		fmt.Println("== Multi-snapshot security game (Def. III.1, empirical) ==")
		rows, err := experiments.SecurityGame(trials, seed)
		if err != nil {
			return err
		}
		fmt.Println(experiments.FormatGame(rows))
	}
	if all || what == "rand" {
		fmt.Println("== Randomness study (Lemma VI.1 indistinguishability) ==")
		rows, err := experiments.RandomnessStudy(200, seed)
		if err != nil {
			return err
		}
		fmt.Println(experiments.FormatRandomness(rows))
	}
	if all || what == "alloc" {
		fmt.Println("== Ablation: allocation strategy (Sec. IV-B) ==")
		rows, err := experiments.AblationAllocator(seed)
		if err != nil {
			return err
		}
		fmt.Println(experiments.FormatAllocator(rows))
	}
	if all || what == "dummy" {
		fmt.Println("== Ablation: dummy-write rate (Sec. IV-A Q1) ==")
		rows, err := experiments.AblationDummyRate(seed, nil, nil)
		if err != nil {
			return err
		}
		fmt.Println(experiments.FormatDummyRate(rows))
	}
	if all || what == "volumes" {
		fmt.Println("== Ablation: virtual volume count n (Sec. IV-C) ==")
		rows, err := experiments.AblationVolumeCount(seed, nil)
		if err != nil {
			return err
		}
		fmt.Println(experiments.FormatVolumeCount(rows))
	}
	if all || what == "smallfile" {
		fmt.Println("== Small-file & rewrite workloads (Bonnie++ phases) ==")
		rows, err := experiments.SmallFileStudy(experiments.Fig4Config{FileMB: fileMB / 2, Seed: seed})
		if err != nil {
			return err
		}
		fmt.Println(experiments.FormatSmallFile(rows))
	}
	if all || what == "gc" {
		fmt.Println("== Garbage-collection policy study (Sec. IV-D) ==")
		rows, err := experiments.GCStudy(seed)
		if err != nil {
			return err
		}
		fmt.Println(experiments.FormatGC(rows))
	}
	return nil
}

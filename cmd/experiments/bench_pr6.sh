#!/bin/sh
# bench_pr6.sh — run the robustness benchmark set and emit the results as
# JSON on stdout (the format committed in BENCH_PR6.json).
#
#   ./cmd/experiments/bench_pr6.sh > /tmp/bench.json
#   BENCHTIME=2000x ./cmd/experiments/bench_pr6.sh    # quicker smoke run
#
# The set pins what the PR 6 resilience machinery costs when nothing
# fails: BenchmarkRetryOverhead pits the scheduler's default retry policy
# against retry disabled on a fault-free device (the pair must match), and
# the faulty=1 variant shows what absorbing a seeded 2% transient-fault
# stream costs end to end; BenchmarkThinWriteRandomAlloc re-runs the thin
# write path with the pool health-mode gates in place for drift; and
# BenchmarkFig4 is the serial-path regression guard whose *_virt
# reproduction metrics must stay bit-identical.
set -e
cd "$(dirname "$0")/../.."

BENCHTIME="${BENCHTIME:-20000x}"

{
	go test -run XXX -bench 'BenchmarkRetryOverhead' -benchtime "$BENCHTIME" ./internal/ioq/
	go test -run XXX -bench 'BenchmarkThinWriteRandomAlloc' -benchtime "$BENCHTIME" ./internal/thinp/
	go test -run XXX -bench 'BenchmarkFig4' -benchtime 1000x .
} | go run ./cmd/experiments/benchjson

package main

import (
	"encoding/json"
	"errors"
	"expvar"
	"flag"
	"fmt"
	"net"
	"net/http"
	_ "net/http/pprof" // registers /debug/pprof/* on the default mux
	"os"
	"sync"
	"sync/atomic"

	"mobiceal"
)

// debugSys holds the most recently opened system so the expvar endpoint
// can snapshot it while a subcommand runs.
var debugSys atomic.Pointer[mobiceal.System]

// registerDebugSystem points the debug endpoints at sys.
func registerDebugSystem(sys *mobiceal.System) { debugSys.Store(sys) }

var publishOnce sync.Once

// debugListenAddr records the resolved listen address (tests bind port 0
// and need to find the server).
var debugListenAddr atomic.Value // string

func debugAddrForTest() string {
	if v := debugListenAddr.Load(); v != nil {
		return v.(string)
	}
	return ""
}

// startDebugServer serves expvar (/debug/vars), pprof (/debug/pprof/),
// Prometheus text exposition (/metrics) and the flight recorder
// (/debug/flight) on addr for the lifetime of the process. Every surface
// renders the current system's state on scrape — memory-only, like the
// telemetry itself; nothing the server shows survives the process.
func startDebugServer(addr string) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return fmt.Errorf("debug-addr: %w", err)
	}
	publishOnce.Do(func() {
		expvar.Publish("mobiceal", expvar.Func(func() any {
			sys := debugSys.Load()
			if sys == nil {
				return nil
			}
			return sys.Telemetry()
		}))
		http.HandleFunc("/metrics", serveMetrics)
		http.HandleFunc("/debug/flight", serveFlight)
	})
	debugListenAddr.Store(ln.Addr().String())
	fmt.Fprintf(os.Stderr, "debug: expvar, pprof, /metrics and /debug/flight on http://%s/\n", ln.Addr())
	go func() { _ = http.Serve(ln, nil) }()
	return nil
}

// serveMetrics renders the telemetry snapshot in Prometheus text
// exposition format (stdlib-rendered; see core's WritePrometheus).
func serveMetrics(w http.ResponseWriter, _ *http.Request) {
	sys := debugSys.Load()
	if sys == nil {
		http.Error(w, "no system open", http.StatusServiceUnavailable)
		return
	}
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	_ = mobiceal.WritePrometheus(w, sys.Telemetry())
}

// serveFlight controls and drains the flight recorder. GET with no query
// streams the current event window as JSONL (the `mobiceal trace -from`
// scrape format); ?ctl=on|off|reset toggles recording or clears the ring.
func serveFlight(w http.ResponseWriter, r *http.Request) {
	sys := debugSys.Load()
	if sys == nil {
		http.Error(w, "no system open", http.StatusServiceUnavailable)
		return
	}
	fr := sys.FlightRecorder()
	switch ctl := r.URL.Query().Get("ctl"); ctl {
	case "":
		w.Header().Set("Content-Type", "application/jsonl; charset=utf-8")
		_ = fr.WriteJSONL(w)
	case "on", "off":
		fr.SetEnabled(ctl == "on")
		fmt.Fprintln(w, ctl)
	case "reset":
		fr.Reset()
		fmt.Fprintln(w, "reset")
	default:
		http.Error(w, "unknown ctl (want on|off|reset)", http.StatusBadRequest)
	}
}

// cmdStatus prints the system's health and telemetry snapshot: the dm-thin
// style one-liner by default, the full snapshot with -json.
func cmdStatus(args []string) error {
	fs := flag.NewFlagSet("status", flag.ContinueOnError)
	image := fs.String("image", "", "device image path")
	jsonOut := fs.Bool("json", false, "print the full snapshot as JSON")
	events := fs.Bool("events", false, "also print the pool event log")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *image == "" {
		return errors.New("status: -image is required")
	}
	dev, err := openImageCLI(*image)
	if err != nil {
		return err
	}
	defer closeQuiet(dev)
	sys, err := mobiceal.Open(dev, cliConfig(mobiceal.Config{}))
	if err != nil {
		return err
	}
	registerDebugSystem(sys)
	health := sys.Health()
	tel := sys.Telemetry()

	if *jsonOut {
		out := struct {
			Healthy   bool               `json:"healthy"`
			Telemetry mobiceal.Telemetry `json:"telemetry"`
		}{health.Healthy(), tel}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		return enc.Encode(out)
	}

	state := "ok"
	if !health.Healthy() {
		state = "degraded"
	}
	fmt.Printf("health: %s\n", state)
	fmt.Println(tel.String())
	if *events {
		for _, e := range tel.Pool.Events {
			fmt.Printf("  event %d +%v [%s] %s\n", e.Seq, e.At, e.Kind, e.Detail)
		}
	}
	return nil
}

package main

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"
)

func TestCLIFullWorkflow(t *testing.T) {
	dir := t.TempDir()
	image := filepath.Join(dir, "disk.img")

	// init with one hidden password.
	if err := run([]string{"init", "-image", image, "-mb", "32",
		"-volumes", "6", "-decoy", "pub-pw", "-hidden", "hid-pw"}); err != nil {
		t.Fatalf("init: %v", err)
	}

	// put a public file.
	src := filepath.Join(dir, "note.txt")
	if err := os.WriteFile(src, []byte("public note"), 0o600); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"put", "-image", image, "-pass", "pub-pw",
		"-name", "note.txt", "-from", src}); err != nil {
		t.Fatalf("public put: %v", err)
	}

	// put a hidden file using the hidden password through the same verbs.
	secret := filepath.Join(dir, "secret.txt")
	if err := os.WriteFile(secret, []byte("hidden payload"), 0o600); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"put", "-image", image, "-pass", "hid-pw",
		"-name", "secret.txt", "-from", secret}); err != nil {
		t.Fatalf("hidden put: %v", err)
	}

	// get both back and compare.
	outPub := filepath.Join(dir, "note.out")
	if err := run([]string{"get", "-image", image, "-pass", "pub-pw",
		"-name", "note.txt", "-to", outPub}); err != nil {
		t.Fatalf("public get: %v", err)
	}
	got, err := os.ReadFile(outPub)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, []byte("public note")) {
		t.Fatalf("public roundtrip = %q", got)
	}
	outHid := filepath.Join(dir, "secret.out")
	if err := run([]string{"get", "-image", image, "-pass", "hid-pw",
		"-name", "secret.txt", "-to", outHid}); err != nil {
		t.Fatalf("hidden get: %v", err)
	}
	got, err = os.ReadFile(outHid)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, []byte("hidden payload")) {
		t.Fatalf("hidden roundtrip = %q", got)
	}

	// ls works for both passwords; rm removes.
	if err := run([]string{"ls", "-image", image, "-pass", "pub-pw"}); err != nil {
		t.Fatalf("ls: %v", err)
	}
	if err := run([]string{"rm", "-image", image, "-pass", "pub-pw",
		"-name", "note.txt"}); err != nil {
		t.Fatalf("rm: %v", err)
	}
	if err := run([]string{"get", "-image", image, "-pass", "pub-pw",
		"-name", "note.txt", "-to", outPub}); err == nil {
		t.Fatal("get of removed file succeeded")
	}

	// gc with the hidden volume protected; hidden data survives.
	if err := run([]string{"gc", "-image", image, "-hidden", "hid-pw"}); err != nil {
		t.Fatalf("gc: %v", err)
	}
	if err := run([]string{"get", "-image", image, "-pass", "hid-pw",
		"-name", "secret.txt", "-to", outHid}); err != nil {
		t.Fatalf("hidden get after gc: %v", err)
	}

	// check: pool and per-volume fsck.
	if err := run([]string{"check", "-image", image}); err != nil {
		t.Fatalf("check: %v", err)
	}
	if err := run([]string{"check", "-image", image, "-pass", "hid-pw"}); err != nil {
		t.Fatalf("check hidden: %v", err)
	}

	// snapshots copy the image.
	snap := filepath.Join(dir, "snap.img")
	if err := run([]string{"snap", "-image", image, "-to", snap}); err != nil {
		t.Fatalf("snap: %v", err)
	}
	a, err := os.Stat(image)
	if err != nil {
		t.Fatal(err)
	}
	b, err := os.Stat(snap)
	if err != nil {
		t.Fatal(err)
	}
	if a.Size() != b.Size() {
		t.Fatalf("snapshot size %d != image %d", b.Size(), a.Size())
	}
}

func TestCLIWrongPassword(t *testing.T) {
	dir := t.TempDir()
	image := filepath.Join(dir, "disk.img")
	if err := run([]string{"init", "-image", image, "-mb", "32",
		"-decoy", "right"}); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"ls", "-image", image, "-pass", "wrong"}); err == nil {
		t.Fatal("ls with wrong password succeeded")
	}
	// gc with an unknown hidden password must refuse (no volume opens).
	if err := run([]string{"gc", "-image", image, "-hidden", "nope"}); err == nil {
		t.Fatal("gc with bogus hidden password succeeded")
	}
}

func TestCLIUsageErrors(t *testing.T) {
	cases := [][]string{
		nil,
		{"frobnicate"},
		{"init"},                      // missing flags
		{"put", "-image", "x"},        // missing flags
		{"get"},                       // missing flags
		{"snap", "-image", "no.file"}, // missing -to
	}
	for _, args := range cases {
		if err := run(args); err == nil {
			t.Fatalf("run(%v) succeeded", args)
		}
	}
}

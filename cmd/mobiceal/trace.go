package main

import (
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"sort"
	"strings"
	"time"

	"mobiceal"
)

// cmdTrace is the btt analogue over the flight recorder. Three sources:
//
//   - default: open -image, enable the recorder, drive a short synthetic
//     workload through the async path (Submit*/Flush), analyze the window;
//   - -from URL: scrape a running process's /debug/flight JSONL endpoint
//     (served by -debug-addr) and analyze that;
//   - -replay FILE: analyze a previously exported JSONL event stream.
//
// -jsonl FILE additionally exports the raw events for later -replay;
// -json prints the full TraceReport instead of the human tables.
func cmdTrace(args []string) error {
	fs := flag.NewFlagSet("trace", flag.ContinueOnError)
	image := fs.String("image", "", "device image path (in-process workload mode)")
	pass := fs.String("pass", "", "password for the traced volume (default: public decoy required)")
	ops := fs.Int("ops", 64, "workload size: async writes then reads, plus a flush")
	from := fs.String("from", "", "scrape a live /debug/flight endpoint (URL or host:port)")
	replay := fs.String("replay", "", "analyze a JSONL event file exported earlier")
	jsonOut := fs.Bool("json", false, "print the full TraceReport as JSON")
	jsonlOut := fs.String("jsonl", "", "also export the raw events as JSONL to this file (- for stdout)")
	if err := fs.Parse(args); err != nil {
		return err
	}

	var events []mobiceal.FlightEvent
	var err error
	switch {
	case *replay != "":
		events, err = replayEvents(*replay)
	case *from != "":
		events, err = scrapeEvents(*from)
	case *image != "":
		if *pass == "" {
			return errors.New("trace: -pass is required with -image")
		}
		events, err = workloadEvents(*image, *pass, *ops)
	default:
		return errors.New("trace: one of -image, -from, -replay is required")
	}
	if err != nil {
		return err
	}

	if *jsonlOut != "" {
		if err := exportJSONL(*jsonlOut, events); err != nil {
			return err
		}
	}

	rep := mobiceal.AnalyzeTrace(events)
	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		return enc.Encode(rep)
	}
	renderTraceReport(os.Stdout, rep)
	return nil
}

// replayEvents loads a JSONL export.
func replayEvents(path string) ([]mobiceal.FlightEvent, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return mobiceal.ReadTraceJSONL(f)
}

// scrapeEvents GETs the flight JSONL from a live debug server. Accepts a
// bare host:port (the /debug/flight path is appended) or a full URL.
func scrapeEvents(from string) ([]mobiceal.FlightEvent, error) {
	url := from
	if !strings.Contains(url, "://") {
		url = "http://" + url
	}
	if !strings.Contains(url, "/debug/flight") {
		url = strings.TrimRight(url, "/") + "/debug/flight"
	}
	resp, err := http.Get(url)
	if err != nil {
		return nil, fmt.Errorf("trace: scraping %s: %w", url, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(io.LimitReader(resp.Body, 256))
		return nil, fmt.Errorf("trace: %s: %s: %s", url, resp.Status, strings.TrimSpace(string(body)))
	}
	return mobiceal.ReadTraceJSONL(resp.Body)
}

// workloadEvents opens the image, enables tracing, and drives a short
// asynchronous workload through whichever volume the password unlocks:
// `ops` block writes, a flush (one group commit), `ops` reads back. The
// recorder is enabled only for the window, so the snapshot holds exactly
// this workload's lifecycle events.
//
// The writes land on the TAIL blocks of the volume — away from the file
// system's metadata at the head — but they are real raw-block writes:
// anything stored in those blocks is overwritten. Use a scratch image.
func workloadEvents(image, pass string, ops int) ([]mobiceal.FlightEvent, error) {
	dev, err := openImageCLI(image)
	if err != nil {
		return nil, err
	}
	defer closeQuiet(dev)
	sys, err := mobiceal.Open(dev, cliConfig(mobiceal.Config{}))
	if err != nil {
		return nil, err
	}
	registerDebugSystem(sys)
	vol, err := sys.OpenPublic(pass)
	if err != nil {
		if vol, err = sys.OpenHidden(pass); err != nil {
			return nil, fmt.Errorf("trace: password opens no volume: %w", err)
		}
	}
	if ops < 1 {
		ops = 1
	}
	span := vol.Device().NumBlocks()
	if span == 0 {
		return nil, errors.New("trace: empty volume")
	}
	if uint64(ops) > span {
		ops = int(span)
	}
	base := span - uint64(ops)

	fr := sys.FlightRecorder()
	fr.Reset()
	fr.SetEnabled(true)
	defer fr.SetEnabled(false)

	bs := vol.Device().BlockSize()
	buf := make([]byte, bs)
	futs := make([]*mobiceal.Future, 0, ops)
	for i := 0; i < ops; i++ {
		for j := range buf {
			buf[j] = byte(i + j)
		}
		blk := base + uint64(i)
		futs = append(futs, vol.SubmitWrite(blk, append([]byte(nil), buf...)))
	}
	if err := mobiceal.WaitAll(futs...); err != nil {
		return nil, err
	}
	if err := vol.Flush().Wait(); err != nil {
		return nil, err
	}
	futs = futs[:0]
	dsts := make([][]byte, ops)
	for i := 0; i < ops; i++ {
		dsts[i] = make([]byte, bs)
		futs = append(futs, vol.SubmitRead(base+uint64(i), dsts[i]))
	}
	if err := mobiceal.WaitAll(futs...); err != nil {
		return nil, err
	}
	fr.SetEnabled(false)
	events := fr.Events()
	if err := sys.Close(); err != nil {
		return nil, err
	}
	return events, nil
}

// exportJSONL writes the events one JSON object per line.
func exportJSONL(path string, events []mobiceal.FlightEvent) error {
	w := io.Writer(os.Stdout)
	if path != "-" {
		f, err := os.Create(path)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	enc := json.NewEncoder(w)
	for _, ev := range events {
		if err := enc.Encode(ev); err != nil {
			return err
		}
	}
	return nil
}

// renderTraceReport prints the human tables: window summary, stage counts,
// per-op Q2D/D2C/Q2C, queueing, merges, commit folding, errors.
func renderTraceReport(w io.Writer, rep *mobiceal.TraceReport) {
	fmt.Fprintf(w, "trace: %d events, %d requests (%d completed) over %v\n",
		rep.Events, rep.Requests, rep.Completed, time.Duration(rep.SpanNS))

	if len(rep.Stages) > 0 {
		fmt.Fprintf(w, "\n%-14s %8s %10s\n", "stage", "events", "blocks")
		for _, sc := range rep.Stages {
			fmt.Fprintf(w, "%-14s %8d %10d\n", sc.Stage, sc.Count, sc.N)
		}
	}

	if len(rep.Ops) > 0 {
		fmt.Fprintf(w, "\nlatency attribution (btt-style):\n")
		for _, op := range rep.Ops {
			fmt.Fprintf(w, "%-8s Q2D %s\n", op.Op, op.Q2D)
			fmt.Fprintf(w, "%-8s D2C %s\n", "", op.D2C)
			fmt.Fprintf(w, "%-8s Q2C %s\n", "", op.Q2C)
		}
	}

	fmt.Fprintf(w, "\nqueue depth: max %d mean %.2f; in flight: max %d\n",
		rep.QueueMax, rep.QueueMean, rep.FlightMax)
	if rep.Merge.Chains > 0 {
		fmt.Fprintf(w, "merges: %d chains, %d merged, max chain %d, mean %.2f\n",
			rep.Merge.Chains, rep.Merge.Merged, rep.Merge.MaxChain, rep.Merge.MeanChain)
	}
	if rep.Commits.Rounds > 0 {
		fmt.Fprintf(w, "commits: %d rounds, %d folded (mean %.2f); door wait %s\n",
			rep.Commits.Rounds, rep.Commits.Folded, rep.Commits.MeanFolded,
			rep.Commits.DoorWait)
	}
	if len(rep.Errors) > 0 {
		classes := make([]string, 0, len(rep.Errors))
		for c := range rep.Errors {
			classes = append(classes, c)
		}
		sort.Strings(classes)
		parts := make([]string, 0, len(classes))
		for _, c := range classes {
			parts = append(parts, fmt.Sprintf("%s=%d", c, rep.Errors[c]))
		}
		fmt.Fprintf(w, "errors: %s\n", strings.Join(parts, " "))
	}
}

package main

import (
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"mobiceal"
)

// initTestImage creates a small initialized image and returns its path.
func initTestImage(t *testing.T) string {
	t.Helper()
	dir := t.TempDir()
	image := filepath.Join(dir, "disk.img")
	if err := run([]string{"init", "-image", image, "-mb", "32",
		"-volumes", "4", "-decoy", "pub-pw"}); err != nil {
		t.Fatalf("init: %v", err)
	}
	return image
}

// captureStdout runs fn with os.Stdout redirected and returns what it wrote.
func captureStdout(t *testing.T, fn func() error) string {
	t.Helper()
	old := os.Stdout
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = w
	runErr := fn()
	os.Stdout = old
	_ = w.Close()
	out, err := io.ReadAll(r)
	if err != nil {
		t.Fatal(err)
	}
	if runErr != nil {
		t.Fatalf("command failed: %v\noutput: %s", runErr, out)
	}
	return string(out)
}

func TestCLIStatusHuman(t *testing.T) {
	image := initTestImage(t)
	out := captureStdout(t, func() error {
		return run([]string{"status", "-image", image, "-events"})
	})
	if !strings.Contains(out, "health: ok") {
		t.Fatalf("status output missing health line: %q", out)
	}
	if !strings.Contains(out, "rw tx ") || !strings.Contains(out, " io sub ") {
		t.Fatalf("status output missing telemetry one-liner: %q", out)
	}
	// Opening for status replays the pool open; its event must show.
	if !strings.Contains(out, "[open]") {
		t.Fatalf("status -events missing pool open event: %q", out)
	}
}

func TestCLIStatusJSON(t *testing.T) {
	image := initTestImage(t)
	out := captureStdout(t, func() error {
		return run([]string{"status", "-image", image, "-json"})
	})
	var parsed struct {
		Healthy   bool `json:"healthy"`
		Telemetry struct {
			Mode string `json:"mode"`
			Meta struct {
				ReadBlocks uint64 `json:"read_blocks"`
			} `json:"meta"`
			Pool struct {
				Events []struct {
					Kind string `json:"kind"`
				} `json:"events"`
			} `json:"pool"`
		} `json:"telemetry"`
	}
	if err := json.Unmarshal([]byte(out), &parsed); err != nil {
		t.Fatalf("status -json not parseable: %v\n%s", err, out)
	}
	if !parsed.Healthy || parsed.Telemetry.Mode != "write" {
		t.Fatalf("unexpected status: %+v", parsed)
	}
	if parsed.Telemetry.Meta.ReadBlocks == 0 {
		t.Fatalf("open should have read metadata blocks: %+v", parsed.Telemetry.Meta)
	}
	if len(parsed.Telemetry.Pool.Events) == 0 {
		t.Fatalf("pool event log empty: %+v", parsed.Telemetry.Pool)
	}
}

func TestCLIDebugEndpoints(t *testing.T) {
	image := initTestImage(t)
	// Port 0 lets the kernel pick; the server logs the resolved address to
	// stderr, but for the test we grab it from the listener by dialing the
	// expvar endpoint through a probe of common retries.
	out := captureStdout(t, func() error {
		return run([]string{"-debug-addr", "127.0.0.1:0", "status", "-image", image})
	})
	if !strings.Contains(out, "health: ok") {
		t.Fatalf("status under -debug-addr broken: %q", out)
	}
	addr := debugAddrForTest()
	if addr == "" {
		t.Fatal("debug server address not recorded")
	}
	cl := &http.Client{Timeout: 5 * time.Second}
	resp, err := cl.Get("http://" + addr + "/debug/vars")
	if err != nil {
		t.Fatalf("expvar endpoint: %v", err)
	}
	body, _ := io.ReadAll(resp.Body)
	_ = resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("expvar status %d", resp.StatusCode)
	}
	var vars map[string]json.RawMessage
	if err := json.Unmarshal(body, &vars); err != nil {
		t.Fatalf("expvar body not JSON: %v", err)
	}
	tel, ok := vars["mobiceal"]
	if !ok {
		t.Fatalf("expvar missing mobiceal variable: %s", body)
	}
	var parsed struct {
		Mode string `json:"mode"`
	}
	if err := json.Unmarshal(tel, &parsed); err != nil || parsed.Mode != "write" {
		t.Fatalf("telemetry expvar = %s (err %v)", tel, err)
	}
	// pprof index must be reachable too.
	resp, err = cl.Get("http://" + addr + "/debug/pprof/")
	if err != nil {
		t.Fatalf("pprof endpoint: %v", err)
	}
	_, _ = io.Copy(io.Discard, resp.Body)
	_ = resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("pprof status %d", resp.StatusCode)
	}
}

// TestCLIGlobalStorageFlags: the global -inflight flag reaches the
// scheduler (the status one-liner grows the window fragment) and the file
// syscall accounting shows for the CLI's file-backed image; -direct either
// opens the image O_DIRECT or fails with the clean unsupported error,
// never a raw errno.
func TestCLIGlobalStorageFlags(t *testing.T) {
	image := initTestImage(t)
	out := captureStdout(t, func() error {
		return run([]string{"-inflight", "4", "status", "-image", image})
	})
	if !strings.Contains(out, " win 0/4") {
		t.Fatalf("status with -inflight 4 missing window fragment: %q", out)
	}
	if !strings.Contains(out, " file buffered preadv ") {
		t.Fatalf("status on a file image missing syscall fragment: %q", out)
	}
	// Without the flag the serial default stays window-free.
	out = captureStdout(t, func() error {
		return run([]string{"status", "-image", image})
	})
	if strings.Contains(out, " win ") {
		t.Fatalf("serial status grew a window fragment: %q", out)
	}

	if err := run([]string{"-direct", "check", "-image", image}); err != nil {
		if !errors.Is(err, mobiceal.ErrDirectUnsupported) {
			t.Fatalf("-direct check failed with a raw error: %v", err)
		}
		if !strings.Contains(err.Error(), "drop -direct") {
			t.Fatalf("-direct failure lacks the remediation hint: %v", err)
		}
	}
}

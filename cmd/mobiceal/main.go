// Command mobiceal manages MobiCeal device images: initialize a PDE device,
// store and retrieve files in the public or a hidden volume, run garbage
// collection, and capture snapshots for the adversary tool.
//
// Usage:
//
//	mobiceal init  -image disk.img -mb 64 -volumes 8 -decoy PW [-hidden PW1,PW2]
//	mobiceal put   -image disk.img -pass PW -name remote.txt -from local.txt
//	mobiceal get   -image disk.img -pass PW -name remote.txt -to local.txt
//	mobiceal ls    -image disk.img -pass PW
//	mobiceal rm    -image disk.img -pass PW -name remote.txt
//	mobiceal gc    -image disk.img -hidden PW1,PW2
//	mobiceal snap  -image disk.img -to snap-1.img
//	mobiceal check -image disk.img [-pass PW]
//	mobiceal status -image disk.img [-json] [-events]
//	mobiceal trace -image disk.img -pass PW [-ops N] [-json] [-jsonl out.jsonl]
//	mobiceal trace -from host:port | -replay events.jsonl [-json]
//
// put/get/ls/rm try the password as the decoy first, then as a hidden
// password, so one command surface serves both modes — just like the boot
// flow. `gc` needs every hidden password so hidden volumes are protected
// (the paper requires GC to run from hidden mode).
//
// The global -debug-addr flag (before the subcommand) serves expvar and
// pprof endpoints for the life of the process:
//
//	mobiceal -debug-addr localhost:6060 status -image disk.img
//	curl http://localhost:6060/debug/vars   # includes the telemetry snapshot
//
// Two more global flags select the real-storage fast path: -direct opens
// the image O_DIRECT (Linux file systems that support it; tmpfs and
// non-Linux builds report a clean error), and -inflight N lets each
// volume queue keep up to N non-overlapping coalesced runs at the device
// at once (default 1 = serial dispatch):
//
//	mobiceal -direct -inflight 4 put -image disk.img -pass PW -name f -from f
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"mobiceal"
)

const blockSize = 4096

// Global storage-path knobs, set by run() before the subcommand runs.
// Every image open and every mobiceal.Open goes through openImageCLI /
// createImageCLI / cliConfig so the flags apply uniformly.
var (
	directMode  bool
	maxInFlight int
)

// openImageCLI opens an existing image honouring the global -direct flag.
func openImageCLI(path string) (mobiceal.Device, error) {
	dev, err := mobiceal.OpenImageWith(path, blockSize, mobiceal.FileOptions{Direct: directMode})
	if err != nil && errors.Is(err, mobiceal.ErrDirectUnsupported) {
		return nil, fmt.Errorf("open %s: %w (drop -direct or move the image off tmpfs)", path, err)
	}
	return dev, err
}

// createImageCLI creates a fresh image honouring the global -direct flag.
func createImageCLI(path string, numBlocks uint64) (mobiceal.Device, error) {
	dev, err := mobiceal.CreateImageWith(path, blockSize, numBlocks, mobiceal.FileOptions{Direct: directMode})
	if err != nil && errors.Is(err, mobiceal.ErrDirectUnsupported) {
		return nil, fmt.Errorf("create %s: %w (drop -direct or move the image off tmpfs)", path, err)
	}
	return dev, err
}

// cliConfig overlays the global -inflight flag on a per-command Config.
func cliConfig(cfg mobiceal.Config) mobiceal.Config {
	cfg.MaxInFlight = maxInFlight
	return cfg
}

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "mobiceal:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	// Global flags precede the subcommand: parsing stops at the first
	// non-flag argument.
	globals := flag.NewFlagSet("mobiceal", flag.ContinueOnError)
	debugAddr := globals.String("debug-addr", "",
		"serve expvar and pprof debug endpoints on this address (e.g. localhost:6060)")
	globals.BoolVar(&directMode, "direct", false,
		"open the device image with O_DIRECT (page-cache bypass; Linux only)")
	globals.IntVar(&maxInFlight, "inflight", 0,
		"per-volume dispatch window: up to N non-overlapping runs in flight (0/1 = serial)")
	if err := globals.Parse(args); err != nil {
		return err
	}
	args = globals.Args()
	if len(args) < 1 {
		return errors.New("usage: mobiceal [-debug-addr ADDR] [-direct] [-inflight N] <init|put|get|ls|rm|gc|snap|check|status|trace> [flags]")
	}
	if *debugAddr != "" {
		if err := startDebugServer(*debugAddr); err != nil {
			return err
		}
	}
	switch args[0] {
	case "init":
		return cmdInit(args[1:])
	case "put":
		return cmdPut(args[1:])
	case "get":
		return cmdGet(args[1:])
	case "ls":
		return cmdLs(args[1:])
	case "rm":
		return cmdRm(args[1:])
	case "gc":
		return cmdGC(args[1:])
	case "snap":
		return cmdSnap(args[1:])
	case "check":
		return cmdCheck(args[1:])
	case "status":
		return cmdStatus(args[1:])
	case "trace":
		return cmdTrace(args[1:])
	default:
		return fmt.Errorf("unknown subcommand %q", args[0])
	}
}

// cmdCheck is the fsck analogue: verify the pool's structural invariants
// and, given a password, the corresponding volume's file system.
func cmdCheck(args []string) error {
	fs := flag.NewFlagSet("check", flag.ContinueOnError)
	image := fs.String("image", "", "device image path")
	pass := fs.String("pass", "", "optional password to check one volume's file system")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *image == "" {
		return errors.New("check: -image is required")
	}
	dev, err := openImageCLI(*image)
	if err != nil {
		return err
	}
	defer closeQuiet(dev)
	sys, err := mobiceal.Open(dev, cliConfig(mobiceal.Config{}))
	if err != nil {
		return err
	}
	if err := sys.Pool().CheckIntegrity(); err != nil {
		return fmt.Errorf("pool integrity: %w", err)
	}
	fmt.Println("pool: OK (bitmap and mappings consistent)")
	if *pass != "" {
		_, vol, fsys, err := openVolume(*image, *pass)
		if err != nil {
			return err
		}
		if err := fsys.CheckIntegrity(); err != nil {
			return fmt.Errorf("%s volume file system: %w", vol.Mode(), err)
		}
		fmt.Printf("%s volume V%d file system: OK (%d files)\n",
			vol.Mode(), vol.ID(), len(fsys.List()))
	}
	return nil
}

func cmdInit(args []string) error {
	fs := flag.NewFlagSet("init", flag.ContinueOnError)
	image := fs.String("image", "", "device image path")
	mb := fs.Int("mb", 64, "device size in MiB")
	volumes := fs.Int("volumes", 8, "number of virtual volumes")
	decoy := fs.String("decoy", "", "decoy password")
	hidden := fs.String("hidden", "", "comma-separated hidden passwords")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *image == "" || *decoy == "" {
		return errors.New("init: -image and -decoy are required")
	}
	dev, err := createImageCLI(*image, uint64(*mb)<<20/blockSize)
	if err != nil {
		return err
	}
	defer closeQuiet(dev)
	var hiddenPwds []string
	if *hidden != "" {
		hiddenPwds = strings.Split(*hidden, ",")
	}
	sys, err := mobiceal.Setup(dev, cliConfig(mobiceal.Config{NumVolumes: *volumes}), *decoy, hiddenPwds)
	if err != nil {
		return err
	}
	vol, err := sys.OpenPublic(*decoy)
	if err != nil {
		return err
	}
	if _, err := vol.Format(); err != nil {
		return err
	}
	for _, pwd := range hiddenPwds {
		hvol, err := sys.OpenHidden(pwd)
		if err != nil {
			return err
		}
		if _, err := hvol.Format(); err != nil {
			return err
		}
	}
	if err := sys.Commit(); err != nil {
		return err
	}
	fmt.Printf("initialized %s: %d MiB, %d volumes, %d hidden\n",
		*image, *mb, *volumes, len(hiddenPwds))
	return nil
}

// openVolume opens the image and mounts whichever volume the password
// unlocks: public (probe mount) first, then hidden (verifier).
func openVolume(image, password string) (*mobiceal.System, *mobiceal.Volume, *mobiceal.FS, error) {
	dev, err := openImageCLI(image)
	if err != nil {
		return nil, nil, nil, err
	}
	sys, err := mobiceal.Open(dev, cliConfig(mobiceal.Config{}))
	if err != nil {
		closeQuiet(dev)
		return nil, nil, nil, err
	}
	registerDebugSystem(sys)
	if vol, err := sys.OpenPublic(password); err == nil {
		if fsys, err := vol.Mount(); err == nil {
			return sys, vol, fsys, nil
		}
	}
	vol, err := sys.OpenHidden(password)
	if err != nil {
		closeQuiet(dev)
		return nil, nil, nil, fmt.Errorf("password opens no volume: %w", err)
	}
	fsys, err := vol.Mount()
	if err != nil {
		closeQuiet(dev)
		return nil, nil, nil, err
	}
	return sys, vol, fsys, nil
}

func cmdPut(args []string) error {
	fs := flag.NewFlagSet("put", flag.ContinueOnError)
	image := fs.String("image", "", "device image path")
	pass := fs.String("pass", "", "password (decoy or hidden)")
	name := fs.String("name", "", "name inside the volume")
	from := fs.String("from", "", "local source file")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *image == "" || *pass == "" || *name == "" || *from == "" {
		return errors.New("put: -image, -pass, -name, -from are required")
	}
	data, err := os.ReadFile(*from)
	if err != nil {
		return err
	}
	sys, vol, fsys, err := openVolume(*image, *pass)
	if err != nil {
		return err
	}
	f, err := fsys.Create(*name)
	if err != nil {
		return err
	}
	if _, err := f.WriteAt(data, 0); err != nil {
		return err
	}
	if err := fsys.Sync(); err != nil {
		return err
	}
	if err := sys.Commit(); err != nil {
		return err
	}
	fmt.Printf("stored %s (%d bytes) in %s volume V%d\n",
		*name, len(data), vol.Mode(), vol.ID())
	return nil
}

func cmdGet(args []string) error {
	fs := flag.NewFlagSet("get", flag.ContinueOnError)
	image := fs.String("image", "", "device image path")
	pass := fs.String("pass", "", "password (decoy or hidden)")
	name := fs.String("name", "", "name inside the volume")
	to := fs.String("to", "", "local destination file (default stdout)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *image == "" || *pass == "" || *name == "" {
		return errors.New("get: -image, -pass, -name are required")
	}
	_, _, fsys, err := openVolume(*image, *pass)
	if err != nil {
		return err
	}
	f, err := fsys.Open(*name)
	if err != nil {
		return err
	}
	data := make([]byte, f.Size())
	if _, err := f.ReadAt(data, 0); err != nil && !errors.Is(err, io.EOF) {
		return err
	}
	if *to == "" {
		_, err = os.Stdout.Write(data)
		return err
	}
	return os.WriteFile(*to, data, 0o600)
}

func cmdLs(args []string) error {
	fs := flag.NewFlagSet("ls", flag.ContinueOnError)
	image := fs.String("image", "", "device image path")
	pass := fs.String("pass", "", "password (decoy or hidden)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *image == "" || *pass == "" {
		return errors.New("ls: -image and -pass are required")
	}
	_, vol, fsys, err := openVolume(*image, *pass)
	if err != nil {
		return err
	}
	fmt.Printf("# %s volume V%d\n", vol.Mode(), vol.ID())
	for _, name := range fsys.List() {
		f, err := fsys.Open(name)
		if err != nil {
			return err
		}
		fmt.Printf("%10d  %s\n", f.Size(), name)
	}
	return nil
}

func cmdRm(args []string) error {
	fs := flag.NewFlagSet("rm", flag.ContinueOnError)
	image := fs.String("image", "", "device image path")
	pass := fs.String("pass", "", "password (decoy or hidden)")
	name := fs.String("name", "", "name inside the volume")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *image == "" || *pass == "" || *name == "" {
		return errors.New("rm: -image, -pass, -name are required")
	}
	sys, _, fsys, err := openVolume(*image, *pass)
	if err != nil {
		return err
	}
	if err := fsys.Remove(*name); err != nil {
		return err
	}
	if err := fsys.Sync(); err != nil {
		return err
	}
	return sys.Commit()
}

func cmdGC(args []string) error {
	fs := flag.NewFlagSet("gc", flag.ContinueOnError)
	image := fs.String("image", "", "device image path")
	hidden := fs.String("hidden", "", "comma-separated hidden passwords (protects those volumes)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *image == "" {
		return errors.New("gc: -image is required")
	}
	dev, err := openImageCLI(*image)
	if err != nil {
		return err
	}
	defer closeQuiet(dev)
	sys, err := mobiceal.Open(dev, cliConfig(mobiceal.Config{}))
	if err != nil {
		return err
	}
	var protected []int
	if *hidden != "" {
		for _, pwd := range strings.Split(*hidden, ",") {
			vol, err := sys.OpenHidden(pwd)
			if err != nil {
				return fmt.Errorf("hidden password rejected: %w", err)
			}
			protected = append(protected, vol.ID())
		}
	}
	report, err := sys.GC(protected, nil)
	if err != nil {
		return err
	}
	fmt.Printf("gc: reclaimed %d of %d dummy blocks (fraction %.2f)\n",
		report.Reclaimed, report.Scanned, report.Fraction)
	return nil
}

func cmdSnap(args []string) error {
	fs := flag.NewFlagSet("snap", flag.ContinueOnError)
	image := fs.String("image", "", "device image path")
	to := fs.String("to", "", "snapshot destination path")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *image == "" || *to == "" {
		return errors.New("snap: -image and -to are required")
	}
	data, err := os.ReadFile(*image)
	if err != nil {
		return err
	}
	if err := os.WriteFile(*to, data, 0o600); err != nil {
		return err
	}
	fmt.Printf("snapshot: %s -> %s (%d bytes)\n", *image, *to, len(data))
	return nil
}

func closeQuiet(dev mobiceal.Device) {
	_ = dev.Close()
}

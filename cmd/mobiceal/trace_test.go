package main

import (
	"io"
	"net/http"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
	"time"

	"mobiceal"
)

// TestCLITraceWorkload: the in-process workload mode produces a full
// lifecycle trace — blktrace stages, per-op latency attribution, commit
// attribution — on a live image, and leaves its file system intact.
func TestCLITraceWorkload(t *testing.T) {
	image := initTestImage(t)
	out := captureStdout(t, func() error {
		return run([]string{"trace", "-image", image, "-pass", "pub-pw", "-ops", "16"})
	})
	for _, want := range []string{
		"trace: ", "latency attribution", "queue depth:",
		"Q ", "D ", "C ", "map-resolve", "devop", "commit-flip",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("trace output missing %q:\n%s", want, out)
		}
	}
	// The workload must not corrupt the volume it traced.
	check := captureStdout(t, func() error {
		return run([]string{"check", "-image", image, "-pass", "pub-pw"})
	})
	if !strings.Contains(check, "OK") {
		t.Fatalf("image unhealthy after trace:\n%s", check)
	}
}

// TestCLITraceExportReplay: -jsonl exports raw events that -replay
// re-analyzes to the same request count.
func TestCLITraceExportReplay(t *testing.T) {
	image := initTestImage(t)
	jsonl := filepath.Join(t.TempDir(), "events.jsonl")
	live := captureStdout(t, func() error {
		return run([]string{"trace", "-image", image, "-pass", "pub-pw",
			"-ops", "8", "-jsonl", jsonl})
	})
	f, err := os.Open(jsonl)
	if err != nil {
		t.Fatalf("jsonl export missing: %v", err)
	}
	evs, err := mobiceal.ReadTraceJSONL(f)
	_ = f.Close()
	if err != nil {
		t.Fatalf("exported jsonl does not parse: %v", err)
	}
	if len(evs) == 0 {
		t.Fatal("exported jsonl is empty")
	}
	replayed := captureStdout(t, func() error {
		return run([]string{"trace", "-replay", jsonl})
	})
	liveHead := strings.SplitN(live, "\n", 2)[0]
	replayHead := strings.SplitN(replayed, "\n", 2)[0]
	if liveHead != replayHead {
		t.Fatalf("replay summary diverges from live:\n live:   %s\n replay: %s",
			liveHead, replayHead)
	}
}

// TestCLITraceScrape: the /debug/flight endpoint serves the recorder's
// window as JSONL and honours the on/off/reset controls; `trace -from`
// analyzes the scrape.
func TestCLITraceScrape(t *testing.T) {
	image := initTestImage(t)
	// trace leaves its events in the recorder and registers the system
	// with the debug server.
	captureStdout(t, func() error {
		return run([]string{"-debug-addr", "127.0.0.1:0", "trace",
			"-image", image, "-pass", "pub-pw", "-ops", "8"})
	})
	addr := debugAddrForTest()
	if addr == "" {
		t.Fatal("debug server address not recorded")
	}
	cl := &http.Client{Timeout: 5 * time.Second}

	get := func(path string) (int, string) {
		t.Helper()
		resp, err := cl.Get("http://" + addr + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		body, _ := io.ReadAll(resp.Body)
		_ = resp.Body.Close()
		return resp.StatusCode, string(body)
	}

	code, body := get("/debug/flight")
	if code != http.StatusOK {
		t.Fatalf("flight scrape status %d", code)
	}
	evs, err := mobiceal.ReadTraceJSONL(strings.NewReader(body))
	if err != nil || len(evs) == 0 {
		t.Fatalf("flight scrape not parseable JSONL (err %v, %d events)", err, len(evs))
	}

	// `trace -from` analyzes the same scrape.
	out := captureStdout(t, func() error {
		return run([]string{"trace", "-from", addr})
	})
	if !strings.Contains(out, "latency attribution") {
		t.Fatalf("trace -from output missing analysis:\n%s", out)
	}

	for _, ctl := range []string{"on", "off", "reset"} {
		code, body = get("/debug/flight?ctl=" + ctl)
		if code != http.StatusOK || !strings.Contains(body, ctl) {
			t.Fatalf("ctl=%s -> %d %q", ctl, code, body)
		}
	}
	if code, body = get("/debug/flight"); code != http.StatusOK || strings.TrimSpace(body) != "" {
		t.Fatalf("ring not empty after reset: %d %q", code, body)
	}
	if code, _ = get("/debug/flight?ctl=bogus"); code != http.StatusBadRequest {
		t.Fatalf("bogus ctl accepted: %d", code)
	}
}

// TestCLIMetricsEndpoint: /metrics serves Prometheus text exposition
// rendered on the standard library, and its label set leaks nothing about
// volumes or the hidden/dummy split.
func TestCLIMetricsEndpoint(t *testing.T) {
	image := initTestImage(t)
	captureStdout(t, func() error {
		return run([]string{"-debug-addr", "127.0.0.1:0", "status", "-image", image})
	})
	addr := debugAddrForTest()
	if addr == "" {
		t.Fatal("debug server address not recorded")
	}
	cl := &http.Client{Timeout: 5 * time.Second}
	resp, err := cl.Get("http://" + addr + "/metrics")
	if err != nil {
		t.Fatalf("metrics endpoint: %v", err)
	}
	raw, _ := io.ReadAll(resp.Body)
	_ = resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("metrics status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.Contains(ct, "text/plain") {
		t.Fatalf("metrics content type %q", ct)
	}
	body := string(raw)

	// Exposition format: HELP/TYPE headers, histogram buckets with a
	// cumulative +Inf terminal and matching _count.
	for _, want := range []string{
		"# HELP mobiceal_pool_provisions_total",
		"# TYPE mobiceal_pool_provisions_total counter",
		"# TYPE mobiceal_pool_alloc_latency_seconds histogram",
		`mobiceal_pool_alloc_latency_seconds_bucket{le="+Inf"}`,
		"mobiceal_pool_alloc_latency_seconds_count",
		`mobiceal_pool_shard_free_blocks{shard="0"}`,
		"# TYPE mobiceal_io_queue_depth gauge",
		"mobiceal_dev_meta_read_blocks_total",
		// The real-storage fast path surfaces here: dispatch-window gauges
		// always, file syscall accounting because the CLI image is a
		// FileDevice.
		"# TYPE mobiceal_io_window_max gauge",
		"mobiceal_io_window_stalls_total",
		"# TYPE mobiceal_file_preadv_total counter",
		"mobiceal_file_pwritev_total",
		"mobiceal_file_direct_mode 0",
	} {
		if !strings.Contains(body, want) {
			t.Fatalf("metrics missing %q:\n%s", want, body)
		}
	}
	// Every sample line must parse as name{optional labels} value.
	sample := regexp.MustCompile(`^[a-z_]+(\{[^}]*\})? [0-9eE+.\-]+$`)
	labels := regexp.MustCompile(`\{([^}]*)\}`)
	for _, line := range strings.Split(strings.TrimSpace(body), "\n") {
		if strings.HasPrefix(line, "#") {
			continue
		}
		if !sample.MatchString(line) {
			t.Fatalf("malformed exposition line %q", line)
		}
		// Deniability: the only labels ever emitted are the histogram
		// bucket edge and the shard index — never a volume, hidden, dummy
		// or real/user attribution.
		if m := labels.FindStringSubmatch(line); m != nil {
			for _, kv := range strings.Split(m[1], ",") {
				key := strings.SplitN(kv, "=", 2)[0]
				if key != "le" && key != "shard" {
					t.Fatalf("unexpected label %q in %q", key, line)
				}
			}
		}
	}
	for _, leak := range []string{"volume", "hidden", "dummy", "thin_id", "real"} {
		if strings.Contains(body, leak) {
			t.Fatalf("metrics leak %q:\n%s", leak, body)
		}
	}
}

// TestCLIStatusShardSummary: the status one-liner carries the per-shard
// allocation imbalance summary PR 8's sharded pool introduced.
func TestCLIStatusShardSummary(t *testing.T) {
	image := initTestImage(t)
	out := captureStdout(t, func() error {
		return run([]string{"status", "-image", image})
	})
	if !regexp.MustCompile(`shards \d+ free \d+\.\.\d+ bal \d+\.\d{2} steals \d+`).MatchString(out) {
		t.Fatalf("status output missing shard summary: %q", out)
	}
}

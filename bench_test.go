// Benchmark harness: one benchmark per table and figure of the paper's
// evaluation, plus ablations for the design choices DESIGN.md calls out.
//
// Two kinds of numbers come out of each run:
//
//   - The Go benchmark figures (ns/op, MB/s) measure the real CPU cost of
//     this repository's implementations on the host machine.
//   - ReportMetric lines labelled "*_virt" carry the virtual-testbed
//     results that reproduce the paper's reported numbers (see
//     EXPERIMENTS.md for the paper-vs-measured record).
//
// Regenerate everything with:
//
//	go test -bench=. -benchmem .
package mobiceal_test

import (
	"fmt"
	"strings"
	"testing"

	"mobiceal"
	"mobiceal/internal/adversary"
	"mobiceal/internal/baseline/defy"
	"mobiceal/internal/baseline/hive"
	"mobiceal/internal/dm"
	"mobiceal/internal/experiments"
	"mobiceal/internal/prng"
	"mobiceal/internal/storage"
	"mobiceal/internal/thinp"
	"mobiceal/internal/workload"
	"mobiceal/internal/xcrypto"
)

const benchBlockSize = 4096

// BenchmarkFig4 reproduces Figure 4: sequential throughput of the five
// storage stacks. Per-op cost is one 64 KB sequential write through the
// live stack; the *_virt metrics are the Nexus-4-profile KB/s of the full
// dd/Bonnie workloads.
func BenchmarkFig4(b *testing.B) {
	rows, err := experiments.Fig4(experiments.Fig4Config{FileMB: 16, Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	byName := map[string]experiments.Fig4Row{}
	for _, r := range rows {
		byName[r.Stack] = r
	}
	for _, name := range experiments.StackNames {
		name := name
		b.Run(name+"/write", func(b *testing.B) {
			st, err := experiments.NewStack(name, experiments.Fig4Config{FileMB: 16, Seed: 2})
			if err != nil {
				b.Fatal(err)
			}
			f, err := st.FS.Create("bench.bin")
			if err != nil {
				b.Fatal(err)
			}
			chunk := make([]byte, 64*1024)
			span := int64(8) << 20
			b.SetBytes(int64(len(chunk)))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				off := (int64(i) * int64(len(chunk))) % span
				if _, err := f.WriteAt(chunk, off); err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			row := byName[name]
			b.ReportMetric(row.DDWriteKBps, "ddwrite_virt_KB/s")
			b.ReportMetric(row.BWriteKBps, "bwrite_virt_KB/s")
		})
		b.Run(name+"/read", func(b *testing.B) {
			st, err := experiments.NewStack(name, experiments.Fig4Config{FileMB: 16, Seed: 2})
			if err != nil {
				b.Fatal(err)
			}
			f, err := st.FS.Create("bench.bin")
			if err != nil {
				b.Fatal(err)
			}
			chunk := make([]byte, 64*1024)
			span := int64(8) << 20
			for off := int64(0); off < span; off += int64(len(chunk)) {
				if _, err := f.WriteAt(chunk, off); err != nil {
					b.Fatal(err)
				}
			}
			b.SetBytes(int64(len(chunk)))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				off := (int64(i) * int64(len(chunk))) % span
				if _, err := f.ReadAt(chunk, off); err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			row := byName[name]
			b.ReportMetric(row.DDReadKBps, "ddread_virt_KB/s")
			b.ReportMetric(row.BReadKBps, "bread_virt_KB/s")
		})
	}
}

// BenchmarkTableIOverhead reproduces Table I: per-op cost is one 4 KB write
// to each scheme's encrypted device; the overhead_virt_pct metric is the
// scheme's virtual-testbed overhead versus plain Ext4.
func BenchmarkTableIOverhead(b *testing.B) {
	rows, err := experiments.TableI(experiments.TableIConfig{FileMB: 8, Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	overheads := map[string]float64{}
	for _, r := range rows {
		overheads[r.Scheme] = r.OverheadPct
	}

	b.Run("DEFY", func(b *testing.B) {
		dev, err := defy.NewOverProfile(benchBlockSize, 4096, nil, 1)
		if err != nil {
			b.Fatal(err)
		}
		buf := make([]byte, benchBlockSize)
		b.SetBytes(benchBlockSize)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			// The log fills; wrap by re-creating when exhausted.
			if err := dev.WriteBlock(uint64(i)%dev.NumBlocks(), buf); err != nil {
				b.StopTimer()
				dev, err = defy.NewOverProfile(benchBlockSize, 4096, nil, uint64(i))
				if err != nil {
					b.Fatal(err)
				}
				b.StartTimer()
			}
		}
		b.ReportMetric(overheads["DEFY"], "overhead_virt_pct")
	})

	b.Run("HIVE", func(b *testing.B) {
		key := make([]byte, 32)
		dev, err := hive.NewOverProfile(benchBlockSize, 4096, key, nil, 1)
		if err != nil {
			b.Fatal(err)
		}
		buf := make([]byte, benchBlockSize)
		b.SetBytes(benchBlockSize)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if err := dev.WriteBlock(uint64(i)%dev.NumBlocks(), buf); err != nil {
				b.Fatal(err)
			}
		}
		b.ReportMetric(overheads["HIVE"], "overhead_virt_pct")
	})

	b.Run("MobiCeal", func(b *testing.B) {
		st, err := experiments.NewStack("MC-P", experiments.Fig4Config{FileMB: 8, Seed: 3})
		if err != nil {
			b.Fatal(err)
		}
		f, err := st.FS.Create("bench.bin")
		if err != nil {
			b.Fatal(err)
		}
		buf := make([]byte, benchBlockSize)
		span := int64(4) << 20
		b.SetBytes(benchBlockSize)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			off := (int64(i) * benchBlockSize) % span
			if _, err := f.WriteAt(buf, off); err != nil {
				b.Fatal(err)
			}
		}
		b.ReportMetric(overheads["MobiCeal"], "overhead_virt_pct")
	})
}

// BenchmarkTableIITiming reproduces Table II: each op runs the full
// three-phone timing experiment; the metrics carry the virtual durations.
func BenchmarkTableIITiming(b *testing.B) {
	var rows []experiments.TableIIRow
	var err error
	for i := 0; i < b.N; i++ {
		rows, err = experiments.TableII(uint64(i + 1))
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, r := range rows {
		prefix := strings.ReplaceAll(r.System, " ", "_")
		b.ReportMetric(r.Init.Seconds(), prefix+"_init_virt_s")
		b.ReportMetric(r.Boot.Seconds(), prefix+"_boot_virt_s")
		if r.HasSwitch {
			b.ReportMetric(r.SwitchIn.Seconds(), prefix+"_switchin_virt_s")
			b.ReportMetric(r.SwitchOut.Seconds(), prefix+"_switchout_virt_s")
		}
	}
}

// BenchmarkSecurityGame reproduces the Def. III.1 empirical game: each op
// is a 10-trial MobiCeal game (setup, epoch, snapshots, adversary guess),
// and the metric is the adversary's mean advantage across ops.
func BenchmarkSecurityGame(b *testing.B) {
	var advantage float64
	for i := 0; i < b.N; i++ {
		res, err := adversary.RunMobiCealGame(adversary.GameConfig{
			Trials:       10,
			Seed:         uint64(i + 1),
			PublicBlocks: 100,
			HiddenBlocks: 20,
			DeviceBlocks: 2048,
		})
		if err != nil {
			b.Fatal(err)
		}
		advantage += res.Advantage
	}
	b.ReportMetric(advantage/float64(b.N), "mean_advantage")
}

// BenchmarkAblationAllocator compares write cost under the two allocation
// strategies (Sec. IV-B): random (MobiCeal) versus sequential (stock).
func BenchmarkAblationAllocator(b *testing.B) {
	for _, sequential := range []bool{false, true} {
		name := "random"
		if sequential {
			name = "sequential"
		}
		b.Run(name, func(b *testing.B) {
			dev := mobiceal.NewMemDevice(benchBlockSize, 16384)
			sys, err := mobiceal.Setup(dev, mobiceal.Config{
				NumVolumes:      8,
				KDFIter:         8,
				Entropy:         prng.NewSeededEntropy(1),
				Seed:            1,
				SeedSet:         true,
				SequentialAlloc: sequential,
			}, "decoy", nil)
			if err != nil {
				b.Fatal(err)
			}
			vol, err := sys.OpenPublic("decoy")
			if err != nil {
				b.Fatal(err)
			}
			fs, err := vol.Format()
			if err != nil {
				b.Fatal(err)
			}
			f, err := fs.Create("bench.bin")
			if err != nil {
				b.Fatal(err)
			}
			buf := make([]byte, benchBlockSize)
			span := int64(16) << 20
			b.SetBytes(benchBlockSize)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				off := (int64(i) * benchBlockSize) % span
				if _, err := f.WriteAt(buf, off); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblationDummyRate sweeps lambda (Sec. IV-A Q1): real write cost
// of the MC-P stack as the dummy-write size parameter varies, with the
// measured dummy amplification as a metric.
func BenchmarkAblationDummyRate(b *testing.B) {
	for _, lambda := range []float64{0.5, 1, 2, 4} {
		lambda := lambda
		b.Run(fmt.Sprintf("lambda=%g", lambda), func(b *testing.B) {
			dev := mobiceal.NewMemDevice(benchBlockSize, 32768)
			sys, err := mobiceal.Setup(dev, mobiceal.Config{
				NumVolumes: 8,
				Lambda:     lambda,
				KDFIter:    8,
				Entropy:    prng.NewSeededEntropy(2),
				Seed:       2,
				SeedSet:    true,
			}, "decoy", nil)
			if err != nil {
				b.Fatal(err)
			}
			vol, err := sys.OpenPublic("decoy")
			if err != nil {
				b.Fatal(err)
			}
			fs, err := vol.Format()
			if err != nil {
				b.Fatal(err)
			}
			f, err := fs.Create("bench.bin")
			if err != nil {
				b.Fatal(err)
			}
			buf := make([]byte, benchBlockSize)
			span := int64(32) << 20
			b.SetBytes(benchBlockSize)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				off := (int64(i) * benchBlockSize) % span
				if _, err := f.WriteAt(buf, off); err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			pubMapped, err := sys.Pool().MappedBlocks(1)
			if err != nil {
				b.Fatal(err)
			}
			if pubMapped > 0 {
				amp := float64(sys.Pool().DummyBlocksWritten()) / float64(pubMapped)
				b.ReportMetric(amp, "dummy_per_public_block")
			}
		})
	}
}

// BenchmarkGC measures one garbage-collection pass over a device with
// accumulated dummy space (Sec. IV-D).
func BenchmarkGC(b *testing.B) {
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		dev := mobiceal.NewMemDevice(benchBlockSize, 8192)
		sys, err := mobiceal.Setup(dev, mobiceal.Config{
			NumVolumes: 8,
			KDFIter:    8,
			Entropy:    prng.NewSeededEntropy(uint64(i)),
			Seed:       uint64(i),
			SeedSet:    true,
		}, "decoy", []string{"hidden"})
		if err != nil {
			b.Fatal(err)
		}
		vol, err := sys.OpenPublic("decoy")
		if err != nil {
			b.Fatal(err)
		}
		fs, err := vol.Format()
		if err != nil {
			b.Fatal(err)
		}
		if _, err := workload.SeqWrite(fs, "traffic", 4<<20, 0, uint64(i)); err != nil {
			b.Fatal(err)
		}
		hid, err := sys.OpenHidden("hidden")
		if err != nil {
			b.Fatal(err)
		}
		src := prng.NewSource(uint64(i))
		b.StartTimer()
		if _, err := sys.GC([]int{hid.ID()}, src); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSmallFileCreate measures the metadata-heavy Bonnie++ create
// phase on the MC-P stack versus stock thin provisioning, the worst case
// for dummy writes (every block is a fresh allocation). Each op is a
// create+remove churn cycle so inodes and space are reusable at any b.N.
func BenchmarkSmallFileCreate(b *testing.B) {
	for _, name := range []string{"A-T-P", "MC-P"} {
		name := name
		b.Run(name, func(b *testing.B) {
			st, err := experiments.NewStack(name, experiments.Fig4Config{FileMB: 16, Seed: 5})
			if err != nil {
				b.Fatal(err)
			}
			const fileSize = 8 * 1024
			b.SetBytes(fileSize)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				prefix := fmt.Sprintf("b%d-", i)
				if _, err := workload.SmallFiles(st.FS, prefix, 1, fileSize, uint64(i)); err != nil {
					b.Fatal(err)
				}
				if err := st.FS.Remove(prefix + "0000"); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkThinRangeWrite compares the vectored thin-volume write path
// (one pool-lock acquisition + coalesced data-device calls per 64 KB
// request) against the equivalent block-at-a-time loop, under both the
// stock sequential allocator (physically contiguous, maximal coalescing)
// and MobiCeal's random allocator (scattered extents, the win is the
// single lock + single mapping resolution).
func BenchmarkThinRangeWrite(b *testing.B) {
	const chunkBlocks = 16
	for _, alloc := range []string{"sequential", "random"} {
		alloc := alloc
		mkPool := func(b *testing.B) *thinp.Thin {
			b.Helper()
			var a thinp.Allocator
			if alloc == "random" {
				a = thinp.NewRandomAllocator(prng.NewSource(1))
			} else {
				a = thinp.NewSequentialAllocator()
			}
			data := storage.NewMemDevice(benchBlockSize, 16384)
			meta := storage.NewMemDevice(benchBlockSize, thinp.MetaBlocksNeeded(16384, benchBlockSize))
			pool, err := thinp.CreatePool(data, meta, thinp.Options{
				Allocator: a,
				Entropy:   prng.NewSeededEntropy(1),
			})
			if err != nil {
				b.Fatal(err)
			}
			if err := pool.CreateThin(1, 16384); err != nil {
				b.Fatal(err)
			}
			thin, err := pool.Thin(1)
			if err != nil {
				b.Fatal(err)
			}
			return thin
		}
		chunk := make([]byte, chunkBlocks*benchBlockSize)
		span := uint64(8192)
		b.Run(alloc+"/vectored", func(b *testing.B) {
			thin := mkPool(b)
			b.SetBytes(int64(len(chunk)))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				start := (uint64(i) * chunkBlocks) % span
				if err := thin.WriteBlocks(start, chunk); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(alloc+"/blockwise", func(b *testing.B) {
			thin := mkPool(b)
			b.SetBytes(int64(len(chunk)))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				start := (uint64(i) * chunkBlocks) % span
				for j := uint64(0); j < chunkBlocks; j++ {
					if err := thin.WriteBlock(start+j, chunk[j*benchBlockSize:(j+1)*benchBlockSize]); err != nil {
						b.Fatal(err)
					}
				}
			}
		})
	}
}

// BenchmarkCryptRange compares the vectored dm-crypt path (reusable
// scratch, one inner call per request) against per-block encryption.
func BenchmarkCryptRange(b *testing.B) {
	key := make([]byte, 64)
	for i := range key {
		key[i] = byte(i)
	}
	cipher, err := xcrypto.NewXTSPlain64(key)
	if err != nil {
		b.Fatal(err)
	}
	const chunkBlocks = 16
	chunk := make([]byte, chunkBlocks*benchBlockSize)
	span := uint64(4096)
	b.Run("vectored", func(b *testing.B) {
		c := dm.NewCrypt(storage.NewMemDevice(benchBlockSize, span), cipher, nil)
		b.SetBytes(int64(len(chunk)))
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			start := (uint64(i) * chunkBlocks) % span
			if err := c.WriteBlocks(start, chunk); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("blockwise", func(b *testing.B) {
		c := dm.NewCrypt(storage.NewMemDevice(benchBlockSize, span), cipher, nil)
		b.SetBytes(int64(len(chunk)))
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			start := (uint64(i) * chunkBlocks) % span
			for j := uint64(0); j < chunkBlocks; j++ {
				if err := c.WriteBlock(start+j, chunk[j*benchBlockSize:(j+1)*benchBlockSize]); err != nil {
					b.Fatal(err)
				}
			}
		}
	})
}

// BenchmarkCommitIncremental measures metadata commit cost on pools of
// increasing mapped size when only a single block changed between commits.
// The incremental path should stay flat as the mapped count grows while
// the full rewrite scales with it.
func BenchmarkCommitIncremental(b *testing.B) {
	for _, mapped := range []uint64{1000, 10000, 40000} {
		mapped := mapped
		setup := func(b *testing.B) (*thinp.Pool, *thinp.Thin) {
			b.Helper()
			dataBlocks := mapped + 8192
			data := storage.NewMemDevice(benchBlockSize, dataBlocks)
			meta := storage.NewMemDevice(benchBlockSize, thinp.MetaBlocksNeeded(dataBlocks, benchBlockSize))
			pool, err := thinp.CreatePool(data, meta, thinp.Options{Entropy: prng.NewSeededEntropy(1)})
			if err != nil {
				b.Fatal(err)
			}
			if err := pool.CreateThin(1, dataBlocks); err != nil {
				b.Fatal(err)
			}
			thin, err := pool.Thin(1)
			if err != nil {
				b.Fatal(err)
			}
			if err := thin.WriteBlocks(0, make([]byte, mapped*uint64(benchBlockSize))); err != nil {
				b.Fatal(err)
			}
			if err := pool.Commit(); err != nil {
				b.Fatal(err)
			}
			return pool, thin
		}
		one := make([]byte, benchBlockSize)
		// Each op remaps exactly one virtual block (discard + rewrite) so
		// every commit has a one-mapping delta to persist.
		mutate := func(b *testing.B, thin *thinp.Thin, i int) {
			b.Helper()
			vb := mapped + uint64(i)%4096
			if err := thin.Discard(vb); err != nil {
				b.Fatal(err)
			}
			if err := thin.WriteBlocks(vb, one); err != nil {
				b.Fatal(err)
			}
		}
		b.Run(fmt.Sprintf("mapped=%d/incremental", mapped), func(b *testing.B) {
			pool, thin := setup(b)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				mutate(b, thin, i)
				if err := pool.Commit(); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(fmt.Sprintf("mapped=%d/full", mapped), func(b *testing.B) {
			pool, thin := setup(b)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				mutate(b, thin, i)
				if err := pool.CommitFull(); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkSnapshotDiff measures the adversary's correlation primitive on a
// populated device.
func BenchmarkSnapshotDiff(b *testing.B) {
	dev := storage.NewMemDevice(benchBlockSize, 8192)
	sys, err := mobiceal.Setup(dev, mobiceal.Config{
		NumVolumes: 8,
		KDFIter:    8,
		Entropy:    prng.NewSeededEntropy(3),
		Seed:       3,
		SeedSet:    true,
	}, "decoy", nil)
	if err != nil {
		b.Fatal(err)
	}
	vol, err := sys.OpenPublic("decoy")
	if err != nil {
		b.Fatal(err)
	}
	fs, err := vol.Format()
	if err != nil {
		b.Fatal(err)
	}
	s1 := dev.Snapshot()
	if _, err := workload.SeqWrite(fs, "x", 4<<20, 0, 4); err != nil {
		b.Fatal(err)
	}
	if err := sys.Commit(); err != nil {
		b.Fatal(err)
	}
	s2 := dev.Snapshot()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := mobiceal.AnalyzeSnapshots(dev, s1, s2); err != nil {
			b.Fatal(err)
		}
	}
}

package mobiceal_test

import (
	"errors"
	"fmt"
	"path/filepath"
	"testing"

	"mobiceal"
	"mobiceal/internal/ioq"
	"mobiceal/internal/storage"
)

// The PR 10 benchmark set: real-storage concurrent-writer throughput, A/B
// across backend (MemDevice / buffered file / O_DIRECT file) and the
// dispatch window (inflight=1 is the pre-window serialized dispatcher,
// bit-for-bit). Committed numbers live in BENCH_PR10.json; regenerate with
// `make bench-pr10`.
//
// Run these with GOMAXPROCS >= the window size (bench_pr10.sh defaults to
// 4). At GOMAXPROCS=1 a goroutine blocking in preadv/pwritev holds its P
// until sysmon retakes it — tens of microseconds, about the cost of the
// whole syscall — so the in-flight runs serialize in the Go runtime before
// the kernel ever sees them and both inflight settings measure the same
// serial device path.

const (
	fbBlockSize   = 4096
	fbChunkBlocks = 8  // one request: 32 KiB
	fbSlots       = 7  // chunk positions per writer region (the 8th stays
	fbRegion      = 64 // a gap, so writers' runs never merge cross-region)
)

// fbDevice builds the backend under test. The direct backend skips where
// the filesystem refuses O_DIRECT (tmpfs TMPDIR, non-Linux builds).
func fbDevice(b *testing.B, backend string, numBlocks uint64) storage.Device {
	b.Helper()
	switch backend {
	case "mem":
		return mobiceal.NewMemDevice(fbBlockSize, numBlocks)
	case "file", "direct":
		path := filepath.Join(b.TempDir(), "bench.img")
		dev, err := mobiceal.CreateImageWith(path, fbBlockSize, numBlocks,
			mobiceal.FileOptions{Direct: backend == "direct"})
		if errors.Is(err, mobiceal.ErrDirectUnsupported) {
			b.Skipf("direct I/O unavailable here: %v", err)
		}
		if err != nil {
			b.Fatal(err)
		}
		b.Cleanup(func() { _ = dev.Close() })
		// Prefill so every timed write is an overwrite of an allocated
		// extent: ext4 serializes direct writes into sparse regions on the
		// exclusive inode lock, which would hide the window's parallelism
		// behind a filesystem artifact no steady-state image pays.
		fill := mobiceal.AlignedBuf(64 * fbBlockSize)
		for at := uint64(0); at < numBlocks; at += 64 {
			n := min(uint64(64), numBlocks-at)
			if err := dev.WriteBlocks(at, fill[:n*fbBlockSize]); err != nil {
				b.Fatal(err)
			}
		}
		if err := dev.Sync(); err != nil {
			b.Fatal(err)
		}
		return dev
	}
	b.Fatalf("unknown backend %q", backend)
	return nil
}

// BenchmarkFileQueueWriters measures the scheduler alone — a VolumeQueue
// straight over the backend, no crypto or thin mapping — so the dispatch
// window's effect on real syscalls is undiluted. Each iteration submits
// one disjoint chunk per writer and waits for all of them; with
// inflight>1 those runs overlap at the device instead of queueing behind
// one another.
func BenchmarkFileQueueWriters(b *testing.B) {
	for _, backend := range []string{"mem", "file", "direct"} {
		for _, writers := range []int{1, 4} {
			for _, inflight := range []int{1, 4} {
				name := fmt.Sprintf("backend=%s/writers=%d/inflight=%d", backend, writers, inflight)
				b.Run(name, func(b *testing.B) {
					dev := fbDevice(b, backend, uint64(writers*fbRegion+fbRegion))
					s := ioq.NewScheduler(ioq.Options{
						Workers: 1, MaxBatch: 32, MergeBlocks: 64, MaxInFlight: inflight,
					})
					defer s.Close()
					q := s.Register(dev)

					bufs := make([][]byte, writers)
					for w := range bufs {
						// Page-aligned sources keep the direct backend on
						// the zero-copy path, and cost the others nothing.
						bufs[w] = mobiceal.AlignedBuf(fbChunkBlocks * fbBlockSize)
						for i := range bufs[w] {
							bufs[w][i] = byte(w*31 + i)
						}
					}
					futs := make([]*mobiceal.Future, writers)
					b.SetBytes(int64(writers * fbChunkBlocks * fbBlockSize))
					b.ResetTimer()
					for i := 0; i < b.N; i++ {
						for w := 0; w < writers; w++ {
							off := uint64(w*fbRegion + (i%fbSlots)*fbChunkBlocks)
							futs[w] = q.SubmitWrite(off, bufs[w])
						}
						if err := ioq.WaitAll(futs...); err != nil {
							b.Fatal(err)
						}
					}
				})
			}
		}
	}
}

// BenchmarkFileQueueReaders is the read-side A/B. On hosts where direct
// writes to one inode serialize in the kernel (single-queue virtio, the
// ext4 allocation path), reads are where the window's overlap shows: a
// direct read is a genuine device round trip the next run can hide
// behind, so readers=4/inflight=4 should clearly beat inflight=1.
func BenchmarkFileQueueReaders(b *testing.B) {
	for _, backend := range []string{"mem", "file", "direct"} {
		for _, readers := range []int{1, 4} {
			for _, inflight := range []int{1, 4} {
				name := fmt.Sprintf("backend=%s/readers=%d/inflight=%d", backend, readers, inflight)
				b.Run(name, func(b *testing.B) {
					dev := fbDevice(b, backend, uint64(readers*fbRegion+fbRegion))
					s := ioq.NewScheduler(ioq.Options{
						Workers: 1, MaxBatch: 32, MergeBlocks: 64, MaxInFlight: inflight,
					})
					defer s.Close()
					q := s.Register(dev)

					bufs := make([][]byte, readers)
					for r := range bufs {
						bufs[r] = mobiceal.AlignedBuf(fbChunkBlocks * fbBlockSize)
					}
					futs := make([]*mobiceal.Future, readers)
					b.SetBytes(int64(readers * fbChunkBlocks * fbBlockSize))
					b.ResetTimer()
					for i := 0; i < b.N; i++ {
						for r := 0; r < readers; r++ {
							off := uint64(r*fbRegion + (i%fbSlots)*fbChunkBlocks)
							futs[r] = q.SubmitRead(off, bufs[r])
						}
						if err := ioq.WaitAll(futs...); err != nil {
							b.Fatal(err)
						}
					}
				})
			}
		}
	}
}

// BenchmarkFileSystemWriters is the same A/B through the whole stack —
// Setup, an open public volume, encryption, thin provisioning, pool
// commits — so the committed numbers show what the fast path is worth
// end to end, not just at the queue.
func BenchmarkFileSystemWriters(b *testing.B) {
	const writers = 4
	for _, backend := range []string{"mem", "file", "direct"} {
		for _, inflight := range []int{1, 4} {
			name := fmt.Sprintf("backend=%s/inflight=%d", backend, inflight)
			b.Run(name, func(b *testing.B) {
				dev := fbDevice(b, backend, 4096)
				cfg := testConfig(77)
				cfg.MaxInFlight = inflight
				sys, err := mobiceal.Setup(dev, cfg, "decoy", nil)
				if err != nil {
					b.Fatal(err)
				}
				defer sys.Close()
				vol, err := sys.OpenPublic("decoy")
				if err != nil {
					b.Fatal(err)
				}

				base := vol.Device().NumBlocks() - uint64(writers*fbRegion) - 8
				bufs := make([][]byte, writers)
				for w := range bufs {
					bufs[w] = mobiceal.AlignedBuf(fbChunkBlocks * fbBlockSize)
					for i := range bufs[w] {
						bufs[w][i] = byte(w*17 + i)
					}
				}
				futs := make([]*mobiceal.Future, writers)
				b.SetBytes(int64(writers * fbChunkBlocks * fbBlockSize))
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					for w := 0; w < writers; w++ {
						off := base + uint64(w*fbRegion+(i%fbSlots)*fbChunkBlocks)
						futs[w] = vol.SubmitWrite(off, bufs[w])
					}
					if err := mobiceal.WaitAll(futs...); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

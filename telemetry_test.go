package mobiceal_test

import (
	"encoding/json"
	"math/rand"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"testing"

	"mobiceal"
)

// TestTelemetryAdversaryCleanVerdict arms the multi-snapshot adversary
// with everything this PR adds: alongside the before/after device captures
// it now also reads telemetry snapshots scraped throughout a mixed
// public+hidden workload — exactly what an attacker probing a live
// `-debug-addr` endpoint would collect. The verdict must not change:
// every changed block stays accountable and random-looking, and nothing in
// the scraped telemetry names a volume, a thin id, or a dummy/real split.
func TestTelemetryAdversaryCleanVerdict(t *testing.T) {
	const (
		blockSize = 4096
		workers   = 4
		rounds    = 40
		region    = 64
	)
	dev := mobiceal.NewMemDevice(blockSize, 8192)
	sys, err := mobiceal.Setup(dev, testConfig(99), "decoy-pass", []string{"hidden-pass"})
	if err != nil {
		t.Fatal(err)
	}
	before := dev.Snapshot()

	pub, err := sys.OpenPublic("decoy-pass")
	if err != nil {
		t.Fatal(err)
	}
	hid, err := sys.OpenHidden("hidden-pass")
	if err != nil {
		t.Fatal(err)
	}

	// The adversary's scraper: concurrent Telemetry() snapshots while the
	// workload runs (this is also the race test for the snapshot paths).
	var stop atomic.Bool
	scraped := make(chan []mobiceal.Telemetry, 1)
	go func() {
		var snaps []mobiceal.Telemetry
		for !stop.Load() {
			snaps = append(snaps, sys.Telemetry())
		}
		snaps = append(snaps, sys.Telemetry())
		scraped <- snaps
	}()

	var wg sync.WaitGroup
	for _, vol := range []*mobiceal.Volume{pub, hid} {
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(vol *mobiceal.Volume, w int) {
				defer wg.Done()
				rng := rand.New(rand.NewSource(int64(vol.ID())<<8 | int64(w)))
				base := uint64(w * region)
				buf := make([]byte, 4*blockSize)
				var futures []*mobiceal.Future
				for r := 0; r < rounds; r++ {
					off := base + uint64(rng.Intn(region-4))
					switch rng.Intn(5) {
					case 0, 1, 2:
						rng.Read(buf)
						if err := vol.SubmitWrite(off, buf).Wait(); err != nil {
							t.Error(err)
							return
						}
					case 3:
						dst := make([]byte, 4*blockSize)
						futures = append(futures, vol.SubmitRead(off, dst))
					case 4:
						futures = append(futures, vol.Flush())
					}
				}
				if err := mobiceal.WaitAll(futures...); err != nil {
					t.Error(err)
					return
				}
				if err := vol.Flush().Wait(); err != nil {
					t.Error(err)
				}
			}(vol, w)
		}
	}
	wg.Wait()
	stop.Store(true)
	snaps := <-scraped
	if t.Failed() {
		return
	}
	if err := sys.Close(); err != nil {
		t.Fatal(err)
	}

	// Device-level verdict, unchanged from the telemetry-free test.
	after := dev.Snapshot()
	report, err := mobiceal.AnalyzeSnapshots(dev, before, after)
	if err != nil {
		t.Fatal(err)
	}
	if report.Changed == 0 {
		t.Fatal("workload changed nothing — test is vacuous")
	}
	if len(report.Unaccountable) > 0 {
		t.Fatalf("%d unaccountable changed blocks", len(report.Unaccountable))
	}
	if report.NonRandomChanged > 0 {
		t.Fatalf("%d non-random changed blocks", report.NonRandomChanged)
	}

	// Telemetry-level verdict: the scraped stream must be volume-blind.
	// Keys are the attack surface — a per-volume counter would have to name
	// its subject somewhere in the wire format.
	if len(snaps) == 0 {
		t.Fatal("scraper collected no telemetry")
	}
	last := snaps[len(snaps)-1]
	if last.Pool.Provisions == 0 || last.IO.Completed == 0 {
		t.Fatalf("telemetry not live: %+v", last)
	}
	forbidden := []string{"volume", "thin_id", "hidden", "dummy", "decoy", "password", "key"}
	for i, snap := range snaps {
		raw, err := json.Marshal(snap)
		if err != nil {
			t.Fatalf("snapshot %d: %v", i, err)
		}
		lower := strings.ToLower(string(raw))
		for _, word := range forbidden {
			if idx := strings.Index(lower, `"`+word); idx >= 0 {
				t.Fatalf("snapshot %d leaks %q near %q", i, word,
					lower[idx:min(idx+60, len(lower))])
			}
		}
	}
	// Monotone sanity across the scrape: counters never go backwards.
	for i := 1; i < len(snaps); i++ {
		if snaps[i].Pool.Provisions < snaps[i-1].Pool.Provisions {
			t.Fatalf("provisions went backwards at snapshot %d", i)
		}
		if snaps[i].IO.Submitted < snaps[i-1].IO.Submitted {
			t.Fatalf("submitted went backwards at snapshot %d", i)
		}
		if snaps[i].Pool.CommitCalls < snaps[i].Pool.CommitFlips {
			t.Fatalf("snapshot %d: flips %d exceed calls %d", i,
				snaps[i].Pool.CommitFlips, snaps[i].Pool.CommitCalls)
		}
	}
}

// BenchmarkTelemetrySnapshot prices one full Telemetry() scrape on an idle
// system — the cost a `-debug-addr` poller pays per request. Snapshots copy
// three histograms and the event ring, so they allocate; what matters is
// that the cost is bounded and paid by the scraper, never by the I/O paths
// (those are covered by the 0-alloc overhead guards in obs and storage).
func BenchmarkTelemetrySnapshot(b *testing.B) {
	dev := mobiceal.NewMemDevice(4096, 4096)
	sys, err := mobiceal.Setup(dev, testConfig(7), "decoy", nil)
	if err != nil {
		b.Fatal(err)
	}
	defer sys.Close()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		snap := sys.Telemetry()
		if snap.Mode == "" {
			b.Fatal("empty snapshot")
		}
	}
}

// TestTelemetryStringOneLiner pins the dm-thin-status-style rendering the
// CLI prints, on a quiet freshly-set-up system.
func TestTelemetryStringOneLiner(t *testing.T) {
	dev := mobiceal.NewMemDevice(4096, 4096)
	sys, err := mobiceal.Setup(dev, testConfig(5), "decoy", nil)
	if err != nil {
		t.Fatal(err)
	}
	defer sys.Close()
	line := sys.Telemetry().String()
	for _, want := range []string{"rw tx ", " data ", " commits ", " alloc(", " io sub ", " dev w "} {
		if !strings.Contains(line, want) {
			t.Fatalf("one-liner %q missing %q", line, want)
		}
	}
}

// TestFileBackedTelemetryStaysDeniable scans the NEW observability surface
// the real-storage fast path adds — the file syscall block and the
// dispatch-window gauges — the way the adversary tests scan the rest: the
// JSON wire format, the Prometheus rendering, and the status one-liner
// must name no volume, no hidden/dummy split, nothing but aggregate
// per-device machinery.
func TestFileBackedTelemetryStaysDeniable(t *testing.T) {
	path := filepath.Join(t.TempDir(), "disk.img")
	dev, err := mobiceal.CreateImage(path, 4096, 4096)
	if err != nil {
		t.Fatal(err)
	}
	defer dev.Close()
	cfg := testConfig(42)
	cfg.MaxInFlight = 4
	sys, err := mobiceal.Setup(dev, cfg, "decoy", []string{"hidden-pass"})
	if err != nil {
		t.Fatal(err)
	}
	defer sys.Close()
	pub, err := sys.OpenPublic("decoy")
	if err != nil {
		t.Fatal(err)
	}
	hid, err := sys.OpenHidden("hidden-pass")
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 4*4096)
	for i, vol := range []*mobiceal.Volume{pub, hid} {
		if err := vol.SubmitWrite(uint64(16+32*i), buf).Wait(); err != nil {
			t.Fatal(err)
		}
		if err := vol.Flush().Wait(); err != nil {
			t.Fatal(err)
		}
	}

	tel := sys.Telemetry()
	if tel.File == nil || tel.File.PwritevCalls == 0 {
		t.Fatalf("file syscall surface not live: %+v", tel.File)
	}
	if tel.IO.WindowMax != 4 {
		t.Fatalf("WindowMax = %d, want 4", tel.IO.WindowMax)
	}

	raw, err := json.Marshal(tel)
	if err != nil {
		t.Fatal(err)
	}
	var prom strings.Builder
	if err := mobiceal.WritePrometheus(&prom, tel); err != nil {
		t.Fatal(err)
	}
	oneliner := tel.String()
	if !strings.Contains(oneliner, " file buffered preadv ") || !strings.Contains(oneliner, " win ") {
		t.Fatalf("one-liner missing the file/window fragments: %q", oneliner)
	}

	forbidden := []string{"volume", "thin_id", "hidden", "dummy", "decoy", "password", "key"}
	for name, text := range map[string]string{
		"json": strings.ToLower(string(raw)),
		"prom": strings.ToLower(prom.String()),
		"line": strings.ToLower(oneliner),
	} {
		for _, word := range forbidden {
			if strings.Contains(text, word) {
				t.Fatalf("%s surface leaks %q:\n%s", name, word, text)
			}
		}
	}
}

// Quickstart: create a MobiCeal device, store public and hidden data, and
// see what each password reveals.
//
//	go run ./examples/quickstart
package main

import (
	"errors"
	"fmt"
	"io"
	"log"

	"mobiceal"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	// A 64 MiB simulated flash device (eMMC behind an FTL is just a block
	// device, which is all MobiCeal needs).
	dev := mobiceal.NewMemDevice(4096, 16384)

	// Initialize with a decoy password and one hidden password. Eight
	// virtual volumes are created: V1 public, one secretly hidden, the
	// rest dummy.
	sys, err := mobiceal.Setup(dev, mobiceal.Config{NumVolumes: 8},
		"decoy-password", []string{"hidden-password"})
	if err != nil {
		return err
	}
	fmt.Println("device initialized: 8 virtual volumes (which one is hidden? the disk won't tell)")

	// Daily use: the public volume under the decoy password.
	pub, err := sys.OpenPublic("decoy-password")
	if err != nil {
		return err
	}
	pubFS, err := pub.Format()
	if err != nil {
		return err
	}
	if err := writeFile(pubFS, "shopping-list.txt", "milk, eggs, bread"); err != nil {
		return err
	}
	fmt.Println("public volume: stored shopping-list.txt")

	// Sensitive use: the hidden volume under the hidden password.
	hid, err := sys.OpenHidden("hidden-password")
	if err != nil {
		return err
	}
	hidFS, err := hid.Format()
	if err != nil {
		return err
	}
	if err := writeFile(hidFS, "sources.txt", "whistleblower contact: ..."); err != nil {
		return err
	}
	fmt.Printf("hidden volume (V%d): stored sources.txt\n", hid.ID())
	if err := sys.Commit(); err != nil {
		return err
	}

	// Coercion: the owner reveals only the decoy password.
	fmt.Println("\n--- device seized; owner discloses the decoy password ---")
	seized, err := sys.OpenPublic("decoy-password")
	if err != nil {
		return err
	}
	seizedFS, err := seized.Mount()
	if err != nil {
		return err
	}
	fmt.Println("adversary sees:", seizedFS.List())

	// Guessing passwords opens nothing.
	if _, err := sys.OpenHidden("password123"); errors.Is(err, mobiceal.ErrBadPassword) {
		fmt.Println("adversary guesses a password: opens nothing, proves nothing")
	}

	// The owner, later and in private, still has the data.
	back, err := sys.OpenHidden("hidden-password")
	if err != nil {
		return err
	}
	backFS, err := back.Mount()
	if err != nil {
		return err
	}
	content, err := readFile(backFS, "sources.txt")
	if err != nil {
		return err
	}
	fmt.Printf("owner re-opens hidden volume: sources.txt = %q\n", content)
	return nil
}

func writeFile(fs *mobiceal.FS, name, content string) error {
	f, err := fs.Create(name)
	if err != nil {
		return err
	}
	if _, err := f.WriteAt([]byte(content), 0); err != nil {
		return err
	}
	return fs.Sync()
}

func readFile(fs *mobiceal.FS, name string) (string, error) {
	f, err := fs.Open(name)
	if err != nil {
		return "", err
	}
	buf := make([]byte, f.Size())
	if _, err := f.ReadAt(buf, 0); err != nil && !errors.Is(err, io.EOF) {
		return "", err
	}
	return string(buf), nil
}

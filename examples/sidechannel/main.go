// Side-channel isolation and fast switching (paper Secs. IV-D, V-B, V-C):
// the simulated Android phone enters hidden mode through the screen lock in
// seconds — unmounting the public volume, putting tmpfs RAM disks over the
// log and cache paths so no hidden-mode trace can reach persistent public
// storage — and leaves it only through a reboot, which clears RAM.
//
//	go run ./examples/sidechannel
package main

import (
	"errors"
	"fmt"
	"log"

	"mobiceal"
	"mobiceal/internal/android"
	"mobiceal/internal/prng"
	"mobiceal/internal/vclock"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	var clock vclock.Clock
	meter := vclock.NewMeter(&clock, vclock.Nexus4())
	dev := mobiceal.NewMemDevice(4096, 8192)
	phone := android.NewMobiCealPhone(dev, mobiceal.Config{
		NumVolumes: 8,
		KDFIter:    64,
		Entropy:    prng.NewSeededEntropy(42),
		Seed:       42,
		SeedSet:    true,
	}, meter, mobiceal.NominalNexus4Userdata)

	sw := vclock.NewStopwatch(&clock)
	if err := phone.Initialize("decoy-pin", []string{"deep-secret"}); err != nil {
		return err
	}
	fmt.Printf("initialized in %v of device time (no disk-filling pass needed)\n",
		sw.Elapsed().Round(1e9))

	if err := phone.Boot("decoy-pin"); err != nil {
		return err
	}
	if err := phone.StartFramework(); err != nil {
		return err
	}
	fmt.Println("\nbooted into public mode; mount table:")
	printMounts(phone)

	// The opportunistic moment: a source hands over documents. Rebooting
	// would take over a minute; the screen lock takes seconds.
	fmt.Println("\n>>> hidden password entered at the screen lock <<<")
	sw = vclock.NewStopwatch(&clock)
	if err := phone.SwitchToHidden("deep-secret"); err != nil {
		return err
	}
	fmt.Printf("switched to hidden mode in %v (paper: 9.27s; reboot-based PDEs: >60s)\n",
		sw.Elapsed().Round(1e7))
	fmt.Println("mount table now:")
	printMounts(phone)
	fmt.Println("  - public volume unmounted: hidden activity cannot leak into it")
	fmt.Println("  - /cache and /devlog on tmpfs: logs and caches die with the RAM")

	fs := phone.DataFS()
	f, err := fs.Create("leaked-documents")
	if err != nil {
		return err
	}
	if _, err := f.WriteAt([]byte("the documents"), 0); err != nil {
		return err
	}
	if err := fs.Sync(); err != nil {
		return err
	}
	fmt.Println("\nsensitive documents captured into the hidden volume")

	// One-way switching: there is no fast path back. The only exit is a
	// reboot, which clears every hidden-mode trace from RAM.
	if err := phone.SwitchToHidden("deep-secret"); errors.Is(err, android.ErrWrongMode) {
		fmt.Println("fast switching is one-way by design (hidden -> public requires reboot)")
	}
	sw = vclock.NewStopwatch(&clock)
	if err := phone.ExitHidden("decoy-pin"); err != nil {
		return err
	}
	fmt.Printf("\nrebooted back to public mode in %v; RAM (and tmpfs traces) cleared\n",
		sw.Elapsed().Round(1e9))
	printMounts(phone)
	fmt.Println("\npublic /data contents:", phone.DataFS().List())
	fmt.Println("no trace of the hidden session exists outside the hidden volume itself")
	return nil
}

func printMounts(phone *android.MobiCealPhone) {
	mounts := phone.Mounts()
	for _, path := range []string{android.PathData, android.PathCache, android.PathDevlog} {
		fmt.Printf("  %-8s -> %s\n", path, mounts[path])
	}
}

// Concurrent volume service: many goroutines hammer the public volume and
// a hidden volume at once through the asynchronous submission API, with
// commit-per-flush durability — and the group-commit door folds the
// concurrent flushes into far fewer metadata slot flips than callers.
//
//	go run ./examples/concurrent
package main

import (
	"fmt"
	"log"
	"math/rand"
	"sync"
	"time"

	"mobiceal"
)

const (
	blockSize = 4096
	writers   = 6 // goroutines per volume
	rounds    = 40
	reqBlocks = 4
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	dev := mobiceal.NewMemDevice(blockSize, 16384) // 64 MiB
	sys, err := mobiceal.Setup(dev, mobiceal.Config{NumVolumes: 8},
		"decoy-password", []string{"hidden-password"})
	if err != nil {
		return err
	}

	pub, err := sys.OpenPublic("decoy-password")
	if err != nil {
		return err
	}
	hid, err := sys.OpenHidden("hidden-password")
	if err != nil {
		return err
	}

	before := dev.Snapshot() // the adversary's first capture

	// Serve both volumes from many goroutines. Each worker owns a
	// disjoint block region of its volume, writes random payloads
	// asynchronously, reads a previous payload back, and flushes for
	// durability every few rounds — the access pattern of a multi-user
	// service, which on a phone is many apps hitting storage at once.
	start := time.Now()
	var wg sync.WaitGroup
	var mu sync.Mutex
	var flushes, writes int
	for _, vol := range []*mobiceal.Volume{pub, hid} {
		for w := 0; w < writers; w++ {
			wg.Add(1)
			go func(vol *mobiceal.Volume, w int) {
				defer wg.Done()
				rng := rand.New(rand.NewSource(int64(w)<<8 | int64(vol.ID())))
				base := uint64(w * 256)
				payload := make([]byte, reqBlocks*blockSize)
				for r := 0; r < rounds; r++ {
					rng.Read(payload)
					off := base + uint64(rng.Intn(256-reqBlocks))
					if err := vol.SubmitWrite(off, payload).Wait(); err != nil {
						log.Printf("write: %v", err)
						return
					}
					if r%4 == 3 {
						// Durability point: everything this worker wrote
						// so far must survive a power cut.
						if err := vol.Flush().Wait(); err != nil {
							log.Printf("flush: %v", err)
							return
						}
						mu.Lock()
						flushes++
						mu.Unlock()
					}
					readBack := make([]byte, reqBlocks*blockSize)
					if err := vol.SubmitRead(off, readBack).Wait(); err != nil {
						log.Printf("read: %v", err)
						return
					}
					mu.Lock()
					writes++
					mu.Unlock()
				}
			}(vol, w)
		}
	}
	wg.Wait()
	elapsed := time.Since(start)
	if err := sys.Close(); err != nil {
		return err
	}

	calls, flips := sys.Pool().CommitStats()
	fmt.Printf("served %d volumes × %d writers: %d writes, %d flushes in %v\n",
		2, writers, writes, flushes, elapsed.Round(time.Millisecond))
	fmt.Printf("group commit: %d commit calls, %d slot flips (%.1f commits/flip; the fold grows with flush concurrency and real device sync latency)\n",
		calls, flips, float64(calls)/float64(flips))

	// The deniability story is unchanged by concurrency: the multi-
	// snapshot adversary diffs its captures and finds only accountable,
	// random-looking changes.
	after := dev.Snapshot()
	report, err := mobiceal.AnalyzeSnapshots(dev, before, after)
	if err != nil {
		return err
	}
	fmt.Printf("adversary diff: %d changed data blocks, unaccountable: %d, non-random: %d\n",
		report.Changed, len(report.Unaccountable), report.NonRandomChanged)
	if len(report.Unaccountable) > 0 || report.NonRandomChanged > 0 {
		return fmt.Errorf("deniability violated")
	}
	fmt.Println("every change is accountable to the public volume or deniable noise — the hidden writes left no trace")
	return nil
}

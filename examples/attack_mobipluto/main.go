// Multi-snapshot attack demonstration: the same adversary procedure defeats
// MobiPluto (the paper's single-snapshot-secure predecessor) and fails
// against MobiCeal — the core experimental claim of the paper (Secs. II-B,
// IV-A).
//
// MobiPluto hides the hidden volume in the random fill at a secret offset;
// its writes change blocks the pool never allocated, so a diff of two
// snapshots exposes them. MobiCeal routes every write — public, hidden,
// dummy — through the same allocation machinery, making hidden changes
// deniable as dummy writes.
//
//	go run ./examples/attack_mobipluto
package main

import (
	"fmt"
	"log"

	"mobiceal"
	"mobiceal/internal/adversary"
	"mobiceal/internal/baseline/mobipluto"
	"mobiceal/internal/minifs"
	"mobiceal/internal/prng"
	"mobiceal/internal/storage"
	"mobiceal/internal/xcrypto"
)

const blockSize = 4096

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	fmt.Println("=== Part 1: MobiPluto under a multi-snapshot adversary ===")
	if err := attackMobiPluto(); err != nil {
		return err
	}
	fmt.Println("\n=== Part 2: the same adversary against MobiCeal ===")
	return attackMobiCeal()
}

func attackMobiPluto() error {
	dev := storage.NewMemDevice(blockSize, 8192)
	sys, err := mobipluto.Setup(dev, mobipluto.Config{
		KDFIter: 64,
		Entropy: prng.NewSeededEntropy(7),
	}, "decoy")
	if err != nil {
		return err
	}
	pubDev, err := sys.OpenPublic("decoy")
	if err != nil {
		return err
	}
	pubFS, err := minifs.Format(pubDev, 512)
	if err != nil {
		return err
	}
	hidDev, err := sys.OpenHidden("secret-pw")
	if err != nil {
		return err
	}
	hidFS, err := minifs.Format(hidDev, 128)
	if err != nil {
		return err
	}
	if err := sys.Pool().Commit(); err != nil {
		return err
	}
	snap1 := dev.Snapshot()
	fmt.Println("snapshot #1 taken (disk is fully random-filled; hidden volume invisible)")

	// The user stores hidden data — and public data, following best
	// practice. It will not help.
	if err := writeBlocks(hidFS, "secrets", 30, 100); err != nil {
		return err
	}
	if err := writeBlocks(pubFS, "cover", 120, 101); err != nil {
		return err
	}
	if err := sys.Pool().Commit(); err != nil {
		return err
	}
	snap2 := dev.Snapshot()
	fmt.Println("user stored 30 hidden + 120 public blocks; snapshot #2 taken")

	metaBlocks := dev.NumBlocks() - sys.DataBlocks() - xcrypto.FooterBlocks(blockSize)
	report, err := adversary.AnalyzeDiff(snap1, snap2, metaBlocks, sys.DataBlocks(), mobipluto.PublicVolumeID)
	if err != nil {
		return err
	}
	fmt.Printf("adversary diff: %d changed, %d owned by public, %d UNACCOUNTABLE\n",
		report.Changed, report.PublicChanged, len(report.Unaccountable))
	if len(report.Unaccountable) > 0 {
		fmt.Println("-> blocks changed that the pool bitmap says are free: only a hidden")
		fmt.Println("   volume writes there. Deniability BROKEN; coercion continues.")
	}
	return nil
}

func attackMobiCeal() error {
	dev := mobiceal.NewMemDevice(blockSize, 8192)
	sys, err := mobiceal.Setup(dev, mobiceal.Config{
		NumVolumes: 8,
		KDFIter:    64,
		Entropy:    prng.NewSeededEntropy(8),
		Seed:       8,
		SeedSet:    true,
	}, "decoy", []string{"secret-pw"})
	if err != nil {
		return err
	}
	pub, err := sys.OpenPublic("decoy")
	if err != nil {
		return err
	}
	pubFS, err := pub.Format()
	if err != nil {
		return err
	}
	hid, err := sys.OpenHidden("secret-pw")
	if err != nil {
		return err
	}
	hidFS, err := hid.Format()
	if err != nil {
		return err
	}
	if err := sys.Commit(); err != nil {
		return err
	}
	snap1 := dev.Snapshot()
	fmt.Println("snapshot #1 taken")

	if err := writeBlocks(hidFS, "secrets", 30, 200); err != nil {
		return err
	}
	if err := writeBlocks(pubFS, "cover", 120, 201); err != nil {
		return err
	}
	if err := sys.Commit(); err != nil {
		return err
	}
	snap2 := dev.Snapshot()
	fmt.Println("user stored 30 hidden + 120 public blocks; snapshot #2 taken")

	report, err := mobiceal.AnalyzeSnapshots(dev, snap1, snap2)
	if err != nil {
		return err
	}
	fmt.Printf("adversary diff: %d changed, %d owned by public, %d owned by other volumes, %d unaccountable\n",
		report.Changed, report.PublicChanged, report.NonPublicChanged, len(report.Unaccountable))
	if len(report.Unaccountable) == 0 {
		fmt.Println("-> every changed block is in the allocation machinery; the non-public")
		fmt.Println("   ones read as uniform noise, exactly what dummy writes produce.")
		fmt.Println("   The hidden writes are DENIABLE as dummy writes.")
	}
	return nil
}

func writeBlocks(fs *minifs.FS, name string, blocks int, seed uint64) error {
	data := make([]byte, blocks*blockSize)
	if _, err := prng.NewSource(seed).Read(data); err != nil {
		return err
	}
	f, err := fs.Create(name)
	if err != nil {
		return err
	}
	if _, err := f.WriteAt(data, 0); err != nil {
		return err
	}
	return fs.Sync()
}

// Border crossing: the paper's motivating scenario (Sec. I). A journalist's
// phone is imaged at two border checkpoints; between them she collects
// sensitive material in the hidden volume and ordinary material in the
// public volume. The multi-snapshot adversary correlates the two images
// with full knowledge of the design — and finds nothing unaccountable.
//
//	go run ./examples/border_crossing
package main

import (
	"fmt"
	"log"

	"mobiceal"
	"mobiceal/internal/prng"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	dev := mobiceal.NewMemDevice(4096, 16384)
	sys, err := mobiceal.Setup(dev, mobiceal.Config{NumVolumes: 8},
		"tourist-photos", []string{"the-real-story"})
	if err != nil {
		return err
	}
	pub, err := sys.OpenPublic("tourist-photos")
	if err != nil {
		return err
	}
	pubFS, err := pub.Format()
	if err != nil {
		return err
	}
	hid, err := sys.OpenHidden("the-real-story")
	if err != nil {
		return err
	}
	hidFS, err := hid.Format()
	if err != nil {
		return err
	}
	if err := sys.Commit(); err != nil {
		return err
	}

	// Checkpoint 1: entering the country. Agents image the full device.
	snap1 := dev.Snapshot()
	fmt.Println("checkpoint 1: device imaged (snapshot #1)")

	// In-country: interviews go to the hidden volume; tourist photos to
	// the public volume. The paper's usage guidance: keep public traffic
	// comparable to hidden traffic.
	src := prng.NewSource(2024)
	interviews := make([]byte, 30*4096)
	if _, err := src.Read(interviews); err != nil {
		return err
	}
	f, err := hidFS.Create("interview-recordings")
	if err != nil {
		return err
	}
	if _, err := f.WriteAt(interviews, 0); err != nil {
		return err
	}
	if err := hidFS.Sync(); err != nil {
		return err
	}
	fmt.Println("in-country: 120 KB of interviews stored in the hidden volume")

	photos := make([]byte, 150*4096)
	if _, err := src.Read(photos); err != nil {
		return err
	}
	pf, err := pubFS.Create("tourist-photos.jpg")
	if err != nil {
		return err
	}
	if _, err := pf.WriteAt(photos, 0); err != nil {
		return err
	}
	if err := pubFS.Sync(); err != nil {
		return err
	}
	fmt.Println("in-country: 600 KB of tourist photos stored in the public volume")
	if err := sys.Commit(); err != nil {
		return err
	}

	// Checkpoint 2: leaving. Second image; the journalist is coerced and
	// reveals the decoy password.
	snap2 := dev.Snapshot()
	fmt.Println("checkpoint 2: device imaged again (snapshot #2); decoy password disclosed")

	// The forensics team correlates the two images. They know MobiCeal's
	// design, read the pool metadata, diff every block, and run
	// randomness tests on everything that changed.
	report, err := mobiceal.AnalyzeSnapshots(dev, snap1, snap2)
	if err != nil {
		return err
	}
	fmt.Println("\n--- forensic correlation of the two snapshots ---")
	fmt.Printf("blocks changed:            %d\n", report.Changed)
	fmt.Printf("  public volume writes:    %d (visible with the decoy key: photos)\n", report.PublicChanged)
	fmt.Printf("  non-public writes:       %d (hidden interviews + dummy noise — indistinguishable)\n", report.NonPublicChanged)
	fmt.Printf("  unaccountable writes:    %d\n", len(report.Unaccountable))
	fmt.Printf("  plaintext-looking:       %d\n", report.NonRandomChanged)

	if len(report.Unaccountable) == 0 && report.NonRandomChanged == 0 {
		fmt.Println("\nverdict: every change is explained by disclosed public writes and")
		fmt.Println("the system's own dummy writes. The journalist walks through.")
	} else {
		fmt.Println("\nverdict: deniability compromised!")
	}

	// And the story survives the trip.
	back, err := sys.OpenHidden("the-real-story")
	if err != nil {
		return err
	}
	backFS, err := back.Mount()
	if err != nil {
		return err
	}
	fmt.Printf("\nat home: hidden volume still holds %v\n", backFS.List())
	return nil
}

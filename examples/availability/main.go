// Availability test (paper Sec. V): besides the LG Nexus 4 prototype, the
// authors verified MobiCeal runs on a Huawei Nexus 6P with Android 7.1.2.
// MobiCeal sits in the block layer below the file system and above the
// storage medium, so the port "can be done with a little work on
// SEAndroid". This example replays the full lifecycle on the Nexus 6P
// device profile and compares the user-visible timings with the Nexus 4 —
// faster flash and boot shrink every number, with no code changes.
//
//	go run ./examples/availability
package main

import (
	"fmt"
	"log"
	"time"

	"mobiceal"
	"mobiceal/internal/android"
	"mobiceal/internal/prng"
	"mobiceal/internal/vclock"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

type timings struct {
	device         string
	init, boot     time.Duration
	switchIn, Exit time.Duration
}

func run() error {
	n4, err := lifecycle(vclock.Nexus4(), "LG Nexus 4 (Android 4.2.2)", 1)
	if err != nil {
		return err
	}
	n6p, err := lifecycle(vclock.Nexus6P(), "Huawei Nexus 6P (Android 7.1.2)", 2)
	if err != nil {
		return err
	}
	fmt.Println("MobiCeal lifecycle on both prototype devices (same code, different profile):")
	fmt.Printf("%-32s %12s %10s %12s %12s\n", "Device", "Init", "Boot", "Enter hid.", "Exit hid.")
	for _, row := range []timings{n4, n6p} {
		fmt.Printf("%-32s %12s %10s %12s %12s\n",
			row.device,
			row.init.Round(time.Second),
			row.boot.Round(10*time.Millisecond),
			row.switchIn.Round(10*time.Millisecond),
			row.Exit.Round(time.Second))
	}
	fmt.Println("\nthe block-layer design is device-independent: any phone exposing")
	fmt.Println("flash as a block device (i.e., every mainstream phone) can run it.")
	return nil
}

func lifecycle(profile vclock.Profile, name string, seed uint64) (timings, error) {
	var clock vclock.Clock
	meter := vclock.NewMeter(&clock, profile)
	dev := mobiceal.NewMemDevice(4096, 8192)
	phone := android.NewMobiCealPhone(dev, mobiceal.Config{
		NumVolumes: 8,
		KDFIter:    16,
		Entropy:    prng.NewSeededEntropy(seed),
		Seed:       seed,
		SeedSet:    true,
	}, meter, mobiceal.NominalNexus4Userdata)

	out := timings{device: name}
	sw := vclock.NewStopwatch(&clock)
	if err := phone.Initialize("decoy", []string{"hidden"}); err != nil {
		return out, err
	}
	out.init = sw.Elapsed()
	sw = vclock.NewStopwatch(&clock)
	if err := phone.Boot("decoy"); err != nil {
		return out, err
	}
	out.boot = sw.Elapsed()
	if err := phone.StartFramework(); err != nil {
		return out, err
	}
	sw = vclock.NewStopwatch(&clock)
	if err := phone.SwitchToHidden("hidden"); err != nil {
		return out, err
	}
	out.switchIn = sw.Elapsed()
	sw = vclock.NewStopwatch(&clock)
	if err := phone.ExitHidden("decoy"); err != nil {
		return out, err
	}
	out.Exit = sw.Elapsed()
	return out, nil
}

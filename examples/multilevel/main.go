// Multi-level deniability (paper Sec. IV-C): several hidden volumes behind
// different passwords. Under escalating coercion the owner can sacrifice a
// low-sensitivity hidden volume as a convincing "confession" while the
// deeper level stays deniable — the adversary cannot tell how many hidden
// volumes exist because every volume index is password-derived and dummy
// volumes look identical.
//
//	go run ./examples/multilevel
package main

import (
	"fmt"
	"log"

	"mobiceal"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	dev := mobiceal.NewMemDevice(4096, 16384)

	// n = 12 virtual volumes; three are hidden. The adversary knows n
	// (it's in the plaintext metadata) but not how many are hidden.
	sys, err := mobiceal.Setup(dev, mobiceal.Config{NumVolumes: 12},
		"everyday-password", []string{
			"level1-private",   // mildly embarrassing
			"level2-work",      // confidential work product
			"level3-explosive", // the data that must never surface
		})
	if err != nil {
		return err
	}

	pub, err := sys.OpenPublic("everyday-password")
	if err != nil {
		return err
	}
	if _, err := pub.Format(); err != nil {
		return err
	}

	levels := map[string]string{
		"level1-private":   "diary.txt",
		"level2-work":      "merger-drafts.doc",
		"level3-explosive": "evidence.zip",
	}
	for pwd, file := range levels {
		vol, err := sys.OpenHidden(pwd)
		if err != nil {
			return err
		}
		fs, err := vol.Format()
		if err != nil {
			return err
		}
		f, err := fs.Create(file)
		if err != nil {
			return err
		}
		if _, err := f.WriteAt([]byte("content of "+file), 0); err != nil {
			return err
		}
		if err := fs.Sync(); err != nil {
			return err
		}
		fmt.Printf("level %q -> volume V%-2d holds %s\n", pwd, vol.ID(), file)
	}
	if err := sys.Commit(); err != nil {
		return err
	}

	fmt.Println("\n--- interrogation ---")
	fmt.Println("adversary: 'a decoy password? we know about PDE. give us the hidden one.'")

	// The owner gives up level 1 — a real hidden volume with believable
	// private content. This is a credible full confession.
	vol, err := sys.OpenHidden("level1-private")
	if err != nil {
		return err
	}
	fs, err := vol.Mount()
	if err != nil {
		return err
	}
	fmt.Printf("owner reveals %q: V%d contains %v\n", "level1-private", vol.ID(), fs.List())
	fmt.Println("adversary finds a private diary — exactly what a hidden volume should hold.")

	// Nothing distinguishes the remaining hidden volumes from dummies.
	fmt.Println("\nremaining volumes (as the adversary sees them):")
	for id := 2; id <= sys.NumVolumes(); id++ {
		if id == vol.ID() {
			continue
		}
		mapped, err := sys.Pool().MappedBlocks(id)
		if err != nil {
			return err
		}
		fmt.Printf("  V%-2d: %d mapped blocks of uniform noise\n", id, mapped)
	}
	fmt.Println("each could be a dummy volume — two of them aren't, and nothing proves it.")

	// Deeper levels remain intact.
	for _, pwd := range []string{"level2-work", "level3-explosive"} {
		v, err := sys.OpenHidden(pwd)
		if err != nil {
			return err
		}
		vfs, err := v.Mount()
		if err != nil {
			return err
		}
		fmt.Printf("\nowner (later, in private) opens %q: %v", pwd, vfs.List())
	}
	fmt.Println()
	return nil
}

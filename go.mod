module mobiceal

go 1.24

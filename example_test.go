package mobiceal_test

import (
	"fmt"

	"mobiceal"
	"mobiceal/internal/prng"
)

// deterministicConfig keeps example output stable.
func deterministicConfig(seed uint64) mobiceal.Config {
	return mobiceal.Config{
		NumVolumes: 6,
		KDFIter:    8,
		Entropy:    prng.NewSeededEntropy(seed),
		Seed:       seed,
		SeedSet:    true,
	}
}

// Setting up a device with a decoy and a hidden password, then storing data
// in both worlds.
func ExampleSetup() {
	dev := mobiceal.NewMemDevice(4096, 4096)
	sys, err := mobiceal.Setup(dev, deterministicConfig(1),
		"decoy-password", []string{"hidden-password"})
	if err != nil {
		panic(err)
	}
	fmt.Println("volumes:", sys.NumVolumes())

	pub, _ := sys.OpenPublic("decoy-password")
	fmt.Println("public volume:", pub.Mode())

	hid, _ := sys.OpenHidden("hidden-password")
	fmt.Println("hidden volume:", hid.Mode())
	// Output:
	// volumes: 6
	// public volume: public
	// hidden volume: hidden
}

// A wrong password opens nothing — and "wrong password" is indistinguishable
// from "there is no hidden volume at all".
func ExampleSystem_OpenHidden() {
	dev := mobiceal.NewMemDevice(4096, 4096)
	sys, err := mobiceal.Setup(dev, deterministicConfig(2),
		"decoy", []string{"real-hidden"})
	if err != nil {
		panic(err)
	}
	if _, err := sys.OpenHidden("a-guess"); err != nil {
		fmt.Println("guess rejected")
	}
	vol, err := sys.OpenHidden("real-hidden")
	if err != nil {
		panic(err)
	}
	fmt.Println("opened volume in", vol.Mode(), "mode")
	// Output:
	// guess rejected
	// opened volume in hidden mode
}

// The multi-snapshot adversary's view: diff two captures and classify every
// change. On a MobiCeal device nothing is unaccountable.
func ExampleAnalyzeSnapshots() {
	dev := mobiceal.NewMemDevice(4096, 4096)
	sys, err := mobiceal.Setup(dev, deterministicConfig(3),
		"decoy", []string{"hidden"})
	if err != nil {
		panic(err)
	}
	pub, _ := sys.OpenPublic("decoy")
	pubFS, _ := pub.Format()
	hid, _ := sys.OpenHidden("hidden")
	hidFS, _ := hid.Format()
	if err := sys.Commit(); err != nil {
		panic(err)
	}
	before := dev.Snapshot()

	// Hidden and public writes between the captures.
	f, _ := hidFS.Create("secret")
	if _, err := f.WriteAt(make([]byte, 20*4096), 0); err != nil {
		panic(err)
	}
	if err := hidFS.Sync(); err != nil {
		panic(err)
	}
	g, _ := pubFS.Create("cover")
	if _, err := g.WriteAt(make([]byte, 80*4096), 0); err != nil {
		panic(err)
	}
	if err := pubFS.Sync(); err != nil {
		panic(err)
	}
	if err := sys.Commit(); err != nil {
		panic(err)
	}
	after := dev.Snapshot()

	report, err := mobiceal.AnalyzeSnapshots(dev, before, after)
	if err != nil {
		panic(err)
	}
	fmt.Println("unaccountable changes:", len(report.Unaccountable))
	fmt.Println("plaintext-looking changes:", report.NonRandomChanged)
	// Output:
	// unaccountable changes: 0
	// plaintext-looking changes: 0
}

// Garbage collection reclaims dummy space while hidden volumes (named by
// the caller, who must be in hidden mode) are protected.
func ExampleSystem_GC() {
	dev := mobiceal.NewMemDevice(4096, 8192)
	sys, err := mobiceal.Setup(dev, deterministicConfig(4),
		"decoy", []string{"hidden"})
	if err != nil {
		panic(err)
	}
	pub, _ := sys.OpenPublic("decoy")
	pubFS, _ := pub.Format()
	f, _ := pubFS.Create("traffic")
	if _, err := f.WriteAt(make([]byte, 500*4096), 0); err != nil {
		panic(err)
	}
	hid, _ := sys.OpenHidden("hidden")

	report, err := sys.GC([]int{hid.ID()}, prng.NewSource(5))
	if err != nil {
		panic(err)
	}
	fmt.Println("reclaimed some dummy space:", report.Reclaimed > 0)
	fmt.Println("left dummy cover behind:", report.Reclaimed < report.Scanned)
	// Output:
	// reclaimed some dummy space: true
	// left dummy cover behind: true
}
